"""Rounding FP32 values to Tensor-Core operand formats.

All functions take an array (any float dtype), and return a **float32**
array whose values are exactly representable in the target format.  Keeping
the result in float32 lets downstream NumPy matmuls model the Tensor-Core
pattern "low-precision multiply, FP32 accumulate" directly.

Formats
-------
========  ========  ========  =====================
format    mantissa  exponent  unit roundoff (2^-(p))
========  ========  ========  =====================
FP16      10 + 1    5         2^-11 ≈ 4.9e-4
BF16      7 + 1     8         2^-8  ≈ 3.9e-3
TF32      10 + 1    8         2^-11 ≈ 4.9e-4
FP32      23 + 1    8         2^-24 ≈ 6.0e-8
========  ========  ========  =====================

The paper's "machine epsilon of Tensor Core" is the FP16/TF32 unit roundoff,
~1e-4; Tables 3/4 check that band-reduction errors stay at that level.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FP16_EPS",
    "BF16_EPS",
    "TF32_EPS",
    "FP32_EPS",
    "round_fp16",
    "round_bf16",
    "round_tf32",
    "round_to_format",
    "split_fp16",
    "split_fp16_into",
]

#: Unit roundoff of IEEE half precision (10 explicit mantissa bits).
FP16_EPS: float = float(2.0**-11)
#: Unit roundoff of bfloat16 (7 explicit mantissa bits).
BF16_EPS: float = float(2.0**-8)
#: Unit roundoff of NVIDIA TF32 (10 explicit mantissa bits, FP32 exponent).
TF32_EPS: float = float(2.0**-11)
#: Unit roundoff of IEEE single precision.
FP32_EPS: float = float(2.0**-24)

#: Exponent-scaling factor used by the Ootomo–Yokota residual split: the
#: FP16 mantissa holds 11 significant bits, so the residual ``x - fp16(x)``
#: is scaled by 2^11 before its own FP16 rounding to avoid underflow.
OOTOMO_SCALE: float = float(2.0**11)


def round_fp16(x) -> np.ndarray:
    """Round ``x`` to IEEE FP16 and return the values as float32.

    Uses NumPy's native float16 conversion (round-to-nearest-even, with
    IEEE overflow to inf and gradual underflow to subnormals), which is the
    behaviour of the hardware conversion instruction feeding Tensor Cores.
    """
    return np.asarray(x, dtype=np.float32).astype(np.float16).astype(np.float32)


def _round_mantissa_f32(x, drop_bits: int) -> np.ndarray:
    """Round float32 ``x`` to ``23 - drop_bits`` mantissa bits (RNE).

    This implements round-to-nearest-even directly on the bit pattern,
    which is exactly what the TF32 conversion inside Tensor Cores and the
    BF16 truncation unit do (modulo their treatment of NaN payloads, which
    we do not model).
    """
    arr = np.asarray(x, dtype=np.float32)
    bits = arr.view(np.uint32).copy()
    # Round-to-nearest-even on the dropped low bits:
    #   bias = (1 << (drop-1)) - 1 + guard-bit-of-result
    lsb = np.uint32(1) << np.uint32(drop_bits)
    guard = (bits >> np.uint32(drop_bits)) & np.uint32(1)
    bias = (lsb >> np.uint32(1)) - np.uint32(1) + guard
    bits = bits + bias
    bits &= ~np.uint32(lsb - np.uint32(1))
    out = bits.view(np.float32)
    # Preserve NaNs (the bias addition may have corrupted payloads / turned
    # a NaN into inf is impossible since exponent saturates, but be safe).
    nan_mask = np.isnan(arr)
    if np.any(nan_mask):
        out = out.copy()
        out[nan_mask] = np.float32(np.nan)
    return out


def round_bf16(x) -> np.ndarray:
    """Round ``x`` to bfloat16 (8-bit exponent, 7-bit mantissa) as float32."""
    return _round_mantissa_f32(x, drop_bits=16)


def round_tf32(x) -> np.ndarray:
    """Round ``x`` to TF32 (8-bit exponent, 10-bit mantissa) as float32.

    TF32 keeps the FP32 exponent, so unlike FP16 it neither overflows nor
    underflows for FP32-range inputs; only the mantissa is shortened.
    """
    return _round_mantissa_f32(x, drop_bits=13)


_ROUNDERS = {
    "fp16": round_fp16,
    "bf16": round_bf16,
    "tf32": round_tf32,
    "fp32": lambda x: np.asarray(x, dtype=np.float32),
}


def round_to_format(x, fmt: str) -> np.ndarray:
    """Round ``x`` to the named format (``fp16``/``bf16``/``tf32``/``fp32``)."""
    try:
        rounder = _ROUNDERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown operand format {fmt!r}; expected one of {sorted(_ROUNDERS)}"
        ) from None
    return rounder(x)


def split_fp16(x, *, scale: float = OOTOMO_SCALE) -> tuple[np.ndarray, np.ndarray]:
    """Ootomo–Yokota high/low FP16 split of an FP32 array.

    Returns ``(hi, lo)`` with ``hi = fp16(x)`` and ``lo = fp16((x - hi) *
    scale)``, both as float32.  The caller reconstructs
    ``x ≈ hi + lo / scale``.  Scaling the residual by ``2^11`` before
    rounding keeps its significant bits above the FP16 underflow threshold —
    this is the "scale the matrix to reduce underflow" step of the paper's
    Section 5.3.
    """
    arr = np.asarray(x, dtype=np.float32)
    hi = round_fp16(arr)
    lo = round_fp16((arr - hi) * np.float32(scale))
    return hi, lo


def split_fp16_into(
    x, hi: np.ndarray, lo: np.ndarray, f16: np.ndarray, *, scale: float = OOTOMO_SCALE
) -> tuple[np.ndarray, np.ndarray]:
    """Allocation-free :func:`split_fp16` into caller-owned buffers.

    ``hi`` and ``lo`` are float32 buffers of ``x``'s shape, ``f16`` a
    float16 staging buffer of the same shape (the FP16 rounding runs
    through it via casting assignment, which is the same round-to-nearest
    conversion as ``astype``).  Bitwise identical to :func:`split_fp16`;
    this is what the EC-TCGEMM hot path uses so the operand splits of
    every panel iteration reuse one set of workspace buffers.
    """
    arr = np.asarray(x, dtype=np.float32)
    np.copyto(f16, arr, casting="same_kind")
    np.copyto(hi, f16, casting="same_kind")
    np.subtract(arr, hi, out=lo)
    lo *= np.float32(scale)
    np.copyto(f16, lo, casting="same_kind")
    np.copyto(lo, f16, casting="same_kind")
    return hi, lo
