"""Compute-precision modes used throughout the library.

A :class:`Precision` value names an end-to-end arithmetic policy for the
matrix-multiply-heavy parts of the algorithms:

- ``FP64`` / ``FP32``: plain IEEE arithmetic (SIMT-core "SGEMM"/"DGEMM").
- ``FP16_TC`` / ``BF16_TC`` / ``TF32_TC``: emulated Tensor-Core GEMM —
  operands rounded to the low-precision format, products accumulated in
  FP32.
- ``FP16_EC_TC``: the paper's EC-TCGEMM — FP16 Tensor-Core GEMMs with the
  Ootomo–Yokota error correction, recovering FP32-level accuracy.

The enum centralizes each mode's operand-rounding function and its machine
epsilon so accuracy checks (Tables 3/4) can be written against
``mode.machine_eps``.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

import numpy as np

from .rounding import (
    BF16_EPS,
    FP16_EPS,
    FP32_EPS,
    TF32_EPS,
    round_bf16,
    round_fp16,
    round_tf32,
)

__all__ = ["Precision"]


def _identity32(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


def _identity64(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


class Precision(enum.Enum):
    """Arithmetic policy for GEMM-heavy kernels."""

    FP64 = "fp64"
    FP32 = "fp32"
    FP16_TC = "fp16_tc"
    BF16_TC = "bf16_tc"
    TF32_TC = "tf32_tc"
    FP16_EC_TC = "fp16_ec_tc"

    @property
    def uses_tensor_core(self) -> bool:
        """Whether this mode routes GEMMs through (emulated) Tensor Cores."""
        return self in (
            Precision.FP16_TC,
            Precision.BF16_TC,
            Precision.TF32_TC,
            Precision.FP16_EC_TC,
        )

    @property
    def is_error_corrected(self) -> bool:
        """Whether the mode applies the Ootomo–Yokota error correction."""
        return self is Precision.FP16_EC_TC

    @property
    def operand_format(self) -> str:
        """Storage format of GEMM operands (``fp16``/``bf16``/``tf32``/``fp32``/``fp64``)."""
        return {
            Precision.FP64: "fp64",
            Precision.FP32: "fp32",
            Precision.FP16_TC: "fp16",
            Precision.BF16_TC: "bf16",
            Precision.TF32_TC: "tf32",
            Precision.FP16_EC_TC: "fp16",
        }[self]

    @property
    def round_operand(self) -> Callable[[np.ndarray], np.ndarray]:
        """Function rounding an array to this mode's operand format.

        For the error-corrected mode the *effective* operand precision is
        FP32 (the correction restores it), so no rounding is exposed here;
        the split happens inside :func:`repro.precision.ec_tcgemm`.
        """
        return {
            Precision.FP64: _identity64,
            Precision.FP32: _identity32,
            Precision.FP16_TC: round_fp16,
            Precision.BF16_TC: round_bf16,
            Precision.TF32_TC: round_tf32,
            Precision.FP16_EC_TC: _identity32,
        }[self]

    @property
    def machine_eps(self) -> float:
        """Unit roundoff governing the mode's error floor.

        For plain TC modes this is the operand-format roundoff (the paper's
        "machine epsilon of Tensor Core", ~1e-4 for FP16); for EC-TC and
        FP32 it is the FP32 roundoff.
        """
        return {
            Precision.FP64: float(2.0**-53),
            Precision.FP32: FP32_EPS,
            Precision.FP16_TC: FP16_EPS,
            Precision.BF16_TC: BF16_EPS,
            Precision.TF32_TC: TF32_EPS,
            Precision.FP16_EC_TC: FP32_EPS,
        }[self]

    @property
    def next_safer(self) -> "Precision | None":
        """The next-safer mode on the escalation ladder (None at the top).

        The ladder orders modes by decreasing numerical risk::

            FP16_TC -> FP16_EC_TC -> TF32_TC -> FP32 -> FP64

        BF16 shares FP32's exponent range but has the coarsest mantissa,
        so its escape hatch is TF32 (same range, FP16-level mantissa).
        The resilience layer (:mod:`repro.resilience`) climbs this ladder
        when a failure detector fires.
        """
        return {
            Precision.FP16_TC: Precision.FP16_EC_TC,
            Precision.BF16_TC: Precision.TF32_TC,
            Precision.FP16_EC_TC: Precision.TF32_TC,
            Precision.TF32_TC: Precision.FP32,
            Precision.FP32: Precision.FP64,
            Precision.FP64: None,
        }[self]

    def ladder(self) -> "list[Precision]":
        """All successively safer modes starting from (and including) this one."""
        out = [self]
        while out[-1].next_safer is not None:
            out.append(out[-1].next_safer)
        return out

    @property
    def working_dtype(self) -> np.dtype:
        """NumPy dtype in which matrices are stored between kernels."""
        return np.dtype(np.float64 if self is Precision.FP64 else np.float32)

    @classmethod
    def from_name(cls, name: "str | Precision") -> "Precision":
        """Resolve a mode from its enum value string (case-insensitive)."""
        if isinstance(name, cls):
            return name
        try:
            return cls(str(name).lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown precision {name!r}; expected one of: {valid}"
            ) from None
