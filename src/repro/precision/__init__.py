"""Floating-point precision emulation for Tensor-Core arithmetic.

NVIDIA Tensor Cores multiply low-precision operands (FP16 / BF16 / TF32) and
accumulate in FP32.  This package emulates that arithmetic on the CPU with
NumPy so the *numerical* behaviour of the paper's algorithms — the ~1e-4
error floor of FP16 tensor-core computation, and the FP32-level accuracy of
the error-corrected EC-TCGEMM — is reproduced exactly where it matters: at
the operand-rounding step.

Public API
----------
- :func:`round_fp16`, :func:`round_bf16`, :func:`round_tf32` — round an FP32
  array to a storage format, returning FP32 values exactly representable in
  that format.
- :func:`split_fp16` — Ootomo–Yokota high/low split with exponent scaling.
- :func:`tcgemm` — emulated tensor-core GEMM (low-precision multiply, FP32
  accumulate, optionally with chunked accumulation to model MMA-tile
  rounding).
- :func:`ec_tcgemm` — error-corrected tensor-core GEMM recovering FP32
  accuracy (Ootomo & Yokota 2022, used by the paper as "EC-TCGEMM").
- :class:`Precision` — enumeration of supported compute modes, with the
  machine epsilon and operand-rounding function of each.
"""

from .rounding import (
    FP16_EPS,
    FP32_EPS,
    TF32_EPS,
    BF16_EPS,
    round_bf16,
    round_fp16,
    round_tf32,
    round_to_format,
    split_fp16,
)
from .modes import Precision
from .tcgemm import tcgemm
from .ec_tcgemm import ec_tcgemm

__all__ = [
    "FP16_EPS",
    "FP32_EPS",
    "TF32_EPS",
    "BF16_EPS",
    "round_fp16",
    "round_bf16",
    "round_tf32",
    "round_to_format",
    "split_fp16",
    "Precision",
    "tcgemm",
    "ec_tcgemm",
]
