"""Table 4 benchmark: eigenvalue accuracy of the TC pipeline vs FP32.

Runs the full two-stage eigensolver numerically over the paper's ten
matrix classes under both precision policies and asserts the paper's
ordering: TC errors at the 1e-5..1e-4 band, FP32 1-3 digits better.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_table4_regeneration(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("table4",), kwargs={"n": 160, "b": 8, "nb": 32},
        iterations=1, rounds=1,
    )
    assert len(result.rows) == 10
    for row in result.rows:
        assert row["tensor_core"] < 2e-4, row["matrix"]
        assert row["fp32_magma_like"] < row["tensor_core"], row["matrix"]
