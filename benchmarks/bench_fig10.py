"""Figure 10 benchmark: overall SBR comparison (WY / WY+EC / ZY / MAGMA)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig10_regeneration(benchmark):
    result = benchmark(run_experiment, "fig10")
    big = next(r for r in result.rows if r["n"] == 32768)
    # Headline bands: paper reports up to 3.7x (half precision) vs MAGMA,
    # ~1.3-1.8x for the EC variant, ~1.3x WY over ZY at large n.
    assert 2.0 < big["speedup_wy_vs_magma"] < 5.5
    assert 1.0 < big["speedup_ec_vs_magma"] < 2.5
    assert 1.05 < big["speedup_wy_vs_zy"] < 1.6
    # WY beats MAGMA at every size.
    assert all(r["speedup_wy_vs_magma"] > 1 for r in result.rows)
