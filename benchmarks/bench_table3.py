"""Table 3 benchmark: Tensor-Core SBR accuracy across matrix classes.

Runs real numerics (FP16 Tensor-Core emulation) over the paper's ten
matrix classes and asserts the paper's claim: backward error and
orthogonality bounded by the Tensor-Core machine epsilon.
"""

from __future__ import annotations

from repro.experiments import run_experiment
from repro.precision import FP16_EPS


def test_table3_regeneration(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("table3",), kwargs={"n": 192, "b": 8, "nb": 32},
        iterations=1, rounds=1,
    )
    assert len(result.rows) == 10
    for row in result.rows:
        assert row["backward_error"] < FP16_EPS, row["matrix"]
        assert row["orthogonality"] < FP16_EPS, row["matrix"]
        # Same order of magnitude band as the paper's 1e-4 column.
        assert row["orthogonality"] > 1e-7, row["matrix"]
