"""Figure 5 benchmark: WY-based SBR GEMM time vs block size nb (n = 32768)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig5_regeneration(benchmark):
    result = benchmark(run_experiment, "fig5")
    times = {r["nb"]: r["gemm_time_s"] for r in result.rows}
    # Paper finding: interior optimum at nb = 1024.
    assert min(times, key=times.get) == 1024
    assert times[128] > times[1024]
    assert times[4096] > times[1024]
    # TFLOPS annotation rises from nb=128 to the optimum.
    tflops = {r["nb"]: r["tflops"] for r in result.rows}
    assert tflops[1024] > tflops[128]
