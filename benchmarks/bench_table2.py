"""Table 2 benchmark: operation counts of ZY- vs WY-based SBR at n = 32768."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


def test_table2_regeneration(benchmark):
    result = benchmark(run_experiment, "table2")
    zy = next(r for r in result.rows if r["algorithm"] == "ZY")
    wys = [r for r in result.rows if r["algorithm"] == "WY"]

    # Paper anchors: ZY = 0.70e14, WY(nb=128) = 0.93e14 at n = 32768.
    assert zy["flops_1e14"] == pytest.approx(0.70, abs=0.02)
    assert wys[0]["flops_1e14"] == pytest.approx(0.93, abs=0.02)

    # WY always costs more than ZY, and the cost grows with nb.
    vals = [r["flops_1e14"] for r in wys]
    assert all(v > zy["flops_1e14"] for v in vals)
    assert all(b >= a for a, b in zip(vals, vals[1:]))
