"""Figure 8 benchmark: panel factorization totals (TSQR vs cuSOLVER vs MAGMA)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig8_regeneration(benchmark):
    result = benchmark(run_experiment, "fig8")
    for row in result.rows:
        # Paper: ~5x advantage for the TSQR panel over both baselines.
        assert row["speedup_vs_cusolver"] > 2.5
        assert row["speedup_vs_magma"] > 3.0
        assert row["tsqr_ms"] < row["cusolver_ms"] < row["magma_ms"]
