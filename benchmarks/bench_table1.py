"""Table 1 benchmark: GEMM throughput model vs the paper's measurements.

Regenerates the eight-row table (both shape families, TC and SGEMM) and
asserts the calibration anchors match the paper to all printed digits.
Additionally times the *emulated* TC-GEMM numerics at library scale so the
emulation's own cost is tracked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.precision import ec_tcgemm, tcgemm


def test_table1_regeneration(benchmark):
    result = benchmark(run_experiment, "table1")
    assert len(result.rows) == 8
    for row in result.rows:
        assert row["tc_ts_model"] == pytest.approx(row["tc_ts_paper"], rel=1e-9)
        assert row["tc_outer_model"] == pytest.approx(row["tc_outer_paper"], rel=1e-9)
        assert row["sgemm_ts_model"] == pytest.approx(row["sgemm_ts_paper"], rel=1e-9)
        assert row["sgemm_outer_model"] == pytest.approx(row["sgemm_outer_paper"], rel=1e-9)
    # Structural fact of Table 1: TC throughput rises steeply with k while
    # SGEMM stays nearly flat.
    tc = result.column("tc_ts_model")
    sg = result.column("sgemm_ts_model")
    assert tc[-1] / tc[0] > 15
    assert sg[-1] / sg[0] < 2


@pytest.mark.parametrize("k", [32, 256])
def test_emulated_tcgemm_numerics(benchmark, rng, k):
    m = 512
    a = rng.standard_normal((m, m)).astype(np.float32)
    b = rng.standard_normal((m, k)).astype(np.float32)
    out = benchmark(tcgemm, a, b)
    assert out.shape == (m, k)


def test_emulated_ec_tcgemm_numerics(benchmark, rng):
    a = rng.standard_normal((512, 512)).astype(np.float32)
    b = rng.standard_normal((512, 128)).astype(np.float32)
    out = benchmark(ec_tcgemm, a, b)
    exact = a.astype(np.float64) @ b.astype(np.float64)
    assert float(np.abs(out - exact).max() / np.abs(exact).max()) < 1e-5
