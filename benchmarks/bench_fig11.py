"""Figure 11 benchmark: end-to-end two-stage EVD, ours vs MAGMA."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig11_regeneration(benchmark):
    result = benchmark(run_experiment, "fig11")
    for row in result.rows:
        # Paper: ~2x overall (up to 2.3x), damped by the shared stage 2.
        assert 1.2 < row["speedup"] < 3.0
        # The PCIe transfer the paper worries about is visible but small.
        assert row["transfer_s"] < 0.1 * row["ours_s"]
