"""Figure 9 benchmark: TC / TSQR ablations of the WY-based SBR vs MAGMA."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig9_regeneration(benchmark):
    result = benchmark(run_experiment, "fig9")
    big = next(r for r in result.rows if r["n"] == 32768)
    small = next(r for r in result.rows if r["n"] == 4096)
    # Large n: Tensor Core is the bigger lever; SGEMM-WY is worse than MAGMA.
    assert big["no_tc_s"] > big["magma_s"]
    assert big["tc_tsqr_s"] < big["no_tsqr_s"]
    # Small n: the panel is the bigger lever.
    assert (small["no_tsqr_s"] / small["tc_tsqr_s"]) > (small["no_tc_s"] / small["tc_tsqr_s"]) * 0.9
    assert all(r["tc_tsqr_s"] < r["magma_s"] for r in result.rows)
