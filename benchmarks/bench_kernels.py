"""Kernel-level benchmarks of the library's own numerics.

These are not paper figures — they track the cost of the Python/NumPy
implementation itself (precision emulation overhead, panel strategies,
band-reduction drivers, tridiagonal eigensolvers) so performance
regressions in the reproduction code are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig import bulge_chase, tridiag_eig_dc, tridiag_eig_ql
from repro.gemm import make_engine
from repro.la import blocked_qr, extract_band, tsqr
from repro.sbr import sbr_wy, sbr_zy
from tests.conftest import random_symmetric


@pytest.fixture
def sym256(rng):
    return random_symmetric(256, rng, dtype=np.float32)


class TestPanelKernels:
    def test_tsqr_panel(self, benchmark, rng):
        panel = rng.standard_normal((1024, 32)).astype(np.float32)
        q, r = benchmark(tsqr, panel)
        assert q.shape == (1024, 32)

    def test_blocked_qr_panel(self, benchmark, rng):
        panel = rng.standard_normal((1024, 32)).astype(np.float32)
        v, b, r = benchmark(blocked_qr, panel)
        assert r.shape == (32, 32)


class TestSbrDrivers:
    @pytest.mark.parametrize("precision", ["fp32", "fp16_tc", "fp16_ec_tc"])
    def test_sbr_wy(self, benchmark, sym256, precision):
        eng = make_engine(precision)
        res = benchmark.pedantic(
            sbr_wy, args=(sym256, 16, 64), kwargs={"engine": eng, "want_q": False},
            iterations=1, rounds=3,
        )
        assert res.bandwidth == 16

    def test_sbr_zy(self, benchmark, sym256):
        res = benchmark.pedantic(
            sbr_zy, args=(sym256, 16), kwargs={"want_q": False},
            iterations=1, rounds=3,
        )
        assert res.bandwidth == 16


class TestStage2Kernels:
    def test_bulge_chase(self, benchmark, rng):
        ab = extract_band(random_symmetric(192, rng), 8)
        d, e, _ = benchmark.pedantic(
            bulge_chase, args=(ab, 8), kwargs={"want_q": False},
            iterations=1, rounds=3,
        )
        assert d.shape == (192,)

    def test_dc_solver(self, benchmark, rng):
        d = rng.standard_normal(512)
        e = rng.standard_normal(511)
        lam, v = benchmark.pedantic(
            tridiag_eig_dc, args=(d, e), iterations=1, rounds=3
        )
        assert lam.shape == (512,)

    def test_ql_solver(self, benchmark, rng):
        d = rng.standard_normal(256)
        e = rng.standard_normal(255)
        lam, _ = benchmark.pedantic(
            tridiag_eig_ql, args=(d, e), kwargs={"want_vectors": False},
            iterations=1, rounds=3,
        )
        assert lam.shape == (256,)
