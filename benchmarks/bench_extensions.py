"""Benchmarks for the extension solvers (refinement, SVD routes, QDWH,
LOBPCG, compact-WY SBR, blocked bulge chase).

Library-performance tracking, with the key quality assertions inline:
refinement reaches float64 from a Tensor-Core start, the SVD routes match
LAPACK, and QDWH converges in its hallmark handful of iterations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig import lobpcg, qdwh_eig, qdwh_polar
from repro.gemm import make_engine
from repro.matrices import generate_symmetric
from repro.metrics import eigenvalue_error
from repro.refine import refined_syevd
from repro.sbr import sbr_wy_compact
from repro.svd import randomized_svd, svd_direct
from tests.conftest import random_symmetric


def test_refined_syevd(benchmark):
    rng = np.random.default_rng(5)
    a, lam_true = generate_symmetric(160, distribution="geo", cond=1e3, rng=rng)
    res = benchmark.pedantic(
        refined_syevd, args=(a,),
        kwargs={"b": 8, "nb": 32, "precision": "fp16_tc", "refine_iterations": 2},
        iterations=1, rounds=3,
    )
    assert eigenvalue_error(lam_true, res.eigenvalues) < 1e-11


def test_svd_direct(benchmark, rng):
    a = rng.standard_normal((160, 96))
    u, s, vt = benchmark.pedantic(svd_direct, args=(a,), iterations=1, rounds=3)
    s_ref = np.linalg.svd(a, compute_uv=False)
    assert float(np.abs(s - s_ref).max()) < 1e-9


def test_randomized_svd(benchmark, rng):
    a = rng.standard_normal((400, 60)) @ rng.standard_normal((60, 300))
    u, s, vt = benchmark.pedantic(
        randomized_svd, args=(a, 60), kwargs={"rng": rng}, iterations=1, rounds=3
    )
    assert np.linalg.norm(a - (u * s) @ vt) / np.linalg.norm(a) < 1e-8


def test_qdwh_polar(benchmark, rng):
    u0, _ = np.linalg.qr(rng.standard_normal((128, 128)))
    a = (u0 * np.geomspace(1, 1e-10, 128)) @ u0.T
    u, h, its = benchmark.pedantic(qdwh_polar, args=(a,), iterations=1, rounds=3)
    assert its <= 7


def test_qdwh_eig(benchmark, rng):
    a = random_symmetric(96, rng)
    lam, v = benchmark.pedantic(qdwh_eig, args=(a,), iterations=1, rounds=3)
    np.testing.assert_allclose(lam, np.linalg.eigvalsh(a), atol=1e-10)


def test_lobpcg_largest(benchmark):
    rng = np.random.default_rng(11)
    a, lam_true = generate_symmetric(256, distribution="geo", cond=1e4,
                                     signs="positive", rng=rng)
    lam, x, its = benchmark.pedantic(
        lobpcg, args=(a, 5), kwargs={"largest": True, "rng": rng},
        iterations=1, rounds=3,
    )
    assert np.abs(lam - lam_true[-5:]).max() < 1e-7


def test_sbr_wy_compact(benchmark, rng):
    a = random_symmetric(256, rng).astype(np.float32)
    res = benchmark.pedantic(
        sbr_wy_compact, args=(a, 16, 64),
        kwargs={"engine": make_engine("fp16_tc"), "want_q": False},
        iterations=1, rounds=3,
    )
    assert res.bandwidth == 16


def test_blocked_bulge_chase(benchmark, rng):
    from repro.eig import bulge_chase
    from repro.la import extract_band

    ab = extract_band(random_symmetric(256, rng), 16)
    d, e, _ = benchmark.pedantic(
        bulge_chase, args=(ab, 16),
        kwargs={"want_q": False, "variant": "blocked"},
        iterations=1, rounds=3,
    )
    assert d.shape == (256,)
