"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table/figure of the paper via
``repro.experiments`` (model-based figures run at full paper scale; the
numeric accuracy tables run at library scale) and asserts the paper's
qualitative structure on the result, so ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction gate.

The whole benchmark session runs under a telemetry collector
(:mod:`repro.obs`) and writes a phase-resolved run manifest under
``runs/`` at session end — each ``run_experiment`` call contributes an
``experiment.<name>`` root span — so ``BENCH_*.json`` trajectories can
be joined against per-phase timelines from this point on.  Set
``REPRO_OBS=0`` to disable, or ``REPRO_RUNS_DIR`` to redirect the
output directory.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(987654321)


@pytest.fixture(scope="session", autouse=True)
def bench_telemetry():
    """Collect spans for the whole benchmark session → runs/ manifest."""
    if os.environ.get("REPRO_OBS", "1") == "0":
        yield None
        return
    with obs.collect() as session:
        yield session
    path = obs.write_manifest(
        session,
        run_dir=os.environ.get("REPRO_RUNS_DIR", "runs"),
        label="bench",
        events="none",
    )
    print(f"\ntelemetry manifest written: {path}")
