"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table/figure of the paper via
``repro.experiments`` (model-based figures run at full paper scale; the
numeric accuracy tables run at library scale) and asserts the paper's
qualitative structure on the result, so ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction gate.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(987654321)
