"""Ablation benchmarks: the design-choice studies DESIGN.md calls out.

Not paper figures — these quantify the *why* behind the paper's choices:
the missing Tensor-Core syr2k (future work §7), the recursive W formation
(Algorithm 2), the panel strategies, and the precision ladder.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    run_panel_ablation,
    run_precision_ablation,
    run_q_method_ablation,
    run_syr2k_ablation,
)


def test_syr2k_ablation(benchmark):
    result = benchmark(run_syr2k_ablation)
    big = next(r for r in result.rows if r["n"] == 32768)
    # Native TC syr2k would flip the WY/ZY conclusion — the quantified
    # version of the paper's future-work motivation.
    assert big["zy_native_syr2k_s"] < big["wy_s"] < big["zy_two_gemms_s"]


def test_q_method_ablation(benchmark):
    result = benchmark(run_q_method_ablation)
    by = {r["method"]: r for r in result.rows}
    assert by["tree"]["total_tflop"] > by["forward"]["total_tflop"]
    # Under the shape model the two assemble Q in comparable time.
    assert 0.5 < by["tree"]["time_s"] / by["forward"]["time_s"] < 2.0


def test_panel_ablation(benchmark):
    result = benchmark.pedantic(
        run_panel_ablation, kwargs={"m": 1024, "w": 32, "repeats": 1},
        iterations=1, rounds=1,
    )
    assert {r["strategy"] for r in result.rows} == {"tsqr", "blocked_qr", "unblocked_qr"}
    assert all(r["factorization_error"] < 1e-4 for r in result.rows)


def test_precision_ablation(benchmark):
    result = benchmark.pedantic(
        run_precision_ablation, kwargs={"n": 128, "b": 8, "nb": 32},
        iterations=1, rounds=1,
    )
    rows = {r["precision"]: r for r in result.rows}
    assert rows["fp16_ec_tc"]["orthogonality"] < rows["fp16_tc"]["orthogonality"] / 10
    assert rows["fp16_tc"]["orthogonality"] < rows["bf16_tc"]["orthogonality"]


def test_recursive_qr_study(benchmark):
    from repro.experiments.ablations import run_recursive_qr_study

    result = benchmark(run_recursive_qr_study)
    assert all(r["speedup"] > 1.2 for r in result.rows)


def test_scaling_study(benchmark):
    from repro.experiments.ablations import run_accuracy_scaling

    result = benchmark.pedantic(
        run_accuracy_scaling, kwargs={"sizes": (96, 192)}, iterations=1, rounds=1
    )
    eo = [r["orthogonality"] for r in result.rows]
    assert eo[-1] < eo[0]


def test_evd_vectors_study(benchmark):
    from repro.experiments.ablations import run_evd_vectors_study

    result = benchmark(run_evd_vectors_study)
    for row in result.rows:
        assert row["speedup"] < row["novec_speedup"]


def test_accumulator_study(benchmark):
    from repro.experiments.ablations import run_accumulator_study

    result = benchmark.pedantic(
        run_accumulator_study, kwargs={"m": 128, "k_values": (64, 512)},
        iterations=1, rounds=1,
    )
    assert all(1e-6 < r["rel_error"] < 1e-2 for r in result.rows)
