"""Figure 7 benchmark: SGEMM time, WY vs ZY — the Tensor-Core-off control."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig7_regeneration(benchmark):
    result = benchmark(run_experiment, "fig7")
    # Paper conclusion: without Tensor Cores the ZY algorithm is uniformly
    # faster — WY-based SBR is a Tensor-Core-specific choice.
    assert all(r["zy_over_wy"] < 1.0 for r in result.rows)
