"""Figure 6 benchmark: TC-GEMM time, WY vs ZY over matrix size."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_fig6_regeneration(benchmark):
    result = benchmark(run_experiment, "fig6")
    ratios = {r["n"]: r["zy_over_wy"] for r in result.rows}
    # Paper structure: ZY wins small, WY wins large; crossover in between.
    assert ratios[4096] < 1.0
    assert ratios[32768] > 1.05
    sizes = sorted(ratios)
    assert all(ratios[a] <= ratios[b] + 1e-9 for a, b in zip(sizes, sizes[1:]))
