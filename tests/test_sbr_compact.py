"""Tests for the compact-WY (Y, T) band-reduction variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import EcTensorCoreEngine, Fp64Engine, SgemmEngine, TensorCoreEngine
from repro.la import bandwidth_of
from repro.metrics import backward_error, orthogonality_error
from repro.precision import FP16_EPS
from repro.sbr import sbr_wy, sbr_wy_compact
from repro.sbr.wy_compact import _panel_t_factor
from tests.conftest import random_symmetric


class TestPanelTFactor:
    def test_recovers_t(self, rng):
        from repro.la import build_wy, householder_qr, build_compact_wy

        v, betas, _ = householder_qr(rng.standard_normal((20, 6)))
        w, y = build_wy(v, betas)
        t = _panel_t_factor(w, y)
        t_ref = build_compact_wy(v, betas)
        np.testing.assert_allclose(t, t_ref, atol=1e-12)
        np.testing.assert_allclose(y @ t, w, atol=1e-12)


class TestSbrWyCompact:
    @pytest.mark.parametrize(
        "n,b,nb",
        [(64, 8, 32), (96, 8, 32), (100, 8, 24), (65, 4, 16), (48, 8, 8), (128, 16, 64)],
    )
    def test_fp64_correct(self, rng, n, b, nb):
        a = random_symmetric(n, rng)
        res = sbr_wy_compact(a, b, nb, engine=Fp64Engine(), want_q=True)
        assert bandwidth_of(res.band, tol=1e-10) <= b
        assert backward_error(a, res.q, res.band) < 1e-13
        assert orthogonality_error(res.q) < 1e-12

    def test_matches_explicit_variant(self, rng):
        a = random_symmetric(96, rng)
        comp = sbr_wy_compact(a, 8, 32, engine=Fp64Engine(), want_q=False)
        expl = sbr_wy(a, 8, 32, engine=Fp64Engine(), want_q=False)
        np.testing.assert_allclose(
            np.linalg.eigvalsh(comp.band), np.linalg.eigvalsh(expl.band), atol=1e-11
        )

    def test_blocks_materialize_w(self, rng):
        from repro.la import wy_matrix

        a = random_symmetric(64, rng)
        res = sbr_wy_compact(a, 8, 32, engine=Fp64Engine(), want_q=False)
        for blk in res.blocks:
            q_blk = wy_matrix(blk.w.astype(np.float64), blk.y.astype(np.float64))
            np.testing.assert_allclose(
                q_blk.T @ q_blk, np.eye(blk.nrows), atol=1e-11
            )

    def test_fp16_tc_error_level(self, rng):
        a = random_symmetric(96, rng)
        res = sbr_wy_compact(a, 8, 32, engine=TensorCoreEngine(), want_q=True)
        assert backward_error(a, res.q, res.band) < FP16_EPS
        assert orthogonality_error(res.q) < FP16_EPS

    def test_ec_recovers_fp32(self, rng):
        a = random_symmetric(96, rng)
        eb_tc = backward_error(
            a, *_qb(sbr_wy_compact(a, 8, 32, engine=TensorCoreEngine(), want_q=True))
        )
        eb_ec = backward_error(
            a, *_qb(sbr_wy_compact(a, 8, 32, engine=EcTensorCoreEngine(), want_q=True))
        )
        assert eb_ec < eb_tc / 50

    def test_w_materialized_once_per_block(self, rng):
        # The memory claim, structurally: the M×k W exists only as the
        # one-per-block materialization GEMM, never in the inner loop.
        a = random_symmetric(128, rng)
        e1 = Fp64Engine(record=True)
        res = sbr_wy_compact(a, 8, 64, engine=e1, want_q=False, panel="blocked_qr")
        form_w_calls = len(e1.trace.by_tag("form_w"))
        assert form_w_calls == len(res.blocks)
        # And the big cache/update shapes match the explicit variant's.
        e2 = Fp64Engine(record=True)
        sbr_wy(a, 8, 64, engine=e2, want_q=False, panel="blocked_qr")
        assert (
            e1.trace.by_tag("wy_oay").shape_multiset()
            == e2.trace.by_tag("wy_oaw").shape_multiset()
        )

    @pytest.mark.parametrize("q_method", ["tree", "forward"])
    def test_q_methods(self, rng, q_method):
        a = random_symmetric(64, rng)
        res = sbr_wy_compact(a, 8, 16, engine=Fp64Engine(), want_q=True, q_method=q_method)
        assert orthogonality_error(res.q) < 1e-12

    def test_nb_validation(self, rng):
        with pytest.raises(ConfigurationError):
            sbr_wy_compact(random_symmetric(64, rng), 8, 20)

    def test_fp32_engine(self, rng):
        a = random_symmetric(64, rng)
        res = sbr_wy_compact(a, 8, 16, engine=SgemmEngine(), want_q=True)
        assert backward_error(a, res.q, res.band) < 1e-5


def _qb(res):
    return res.q, res.band
