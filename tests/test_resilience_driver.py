"""Driver-level resilience: fault recovery, degradation modes, reporting.

The acceptance test of the subsystem: inject NaN/overflow faults into
each phase of the two-stage eigensolver (panel TSQR, WY trailing update,
bulge chase) and verify that ``on_breakdown="escalate"`` recovers with
the accuracy of the escalated mode, that ``"raise"`` names the failed
phase, that ``"best_effort"`` always returns, and that everything is
visible both in ``EvdResult.resilience_report`` and in the obs manifest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig.driver import syevd_1stage, syevd_2stage, syevd_selected
from repro.errors import (
    ConvergenceError,
    NumericalBreakdownError,
    ReproError,
    ShapeError,
    SingularMatrixError,
)
from repro.matrices import generate_symmetric
from repro.precision.modes import Precision
from repro.resilience import EscalationLadder, FaultInjector, FaultSpec
from repro.sbr.wy import sbr_wy
from repro.sbr.zy import sbr_zy

from conftest import random_symmetric


@pytest.fixture
def sym96(rng):
    return random_symmetric(96, rng)


def eig_error(res, a):
    return float(np.abs(np.sort(res.eigenvalues) - np.linalg.eigvalsh(a)).max())


# ---------------------------------------------------------------------------
# Healthy runs: the layer is invisible
# ---------------------------------------------------------------------------


class TestHealthyRuns:
    def test_default_run_has_empty_report(self, sym96):
        res = syevd_2stage(sym96, b=8, nb=32, precision="fp32")
        assert res.resilience_report is not None
        assert res.resilience_report.empty
        assert res.resilience_report.final_precision["sbr"] == "fp32"

    def test_layer_can_be_disabled(self, sym96):
        res = syevd_2stage(sym96, b=8, nb=32, on_breakdown=None)
        assert res.resilience_report is None

    def test_resilient_run_matches_unprotected_run(self, sym96):
        protected = syevd_2stage(sym96, b=8, nb=32, precision="fp32")
        bare = syevd_2stage(sym96, b=8, nb=32, precision="fp32", on_breakdown=None)
        np.testing.assert_array_equal(protected.eigenvalues, bare.eigenvalues)

    @pytest.mark.parametrize("precision", ["fp64", "fp32", "tf32_tc",
                                           "fp16_tc", "bf16_tc", "fp16_ec_tc"])
    @pytest.mark.parametrize("dist", ["geo", "normal", "cluster1"])
    def test_precision_sweep_round_trips_clean(self, precision, dist):
        # Property sweep: every precision mode round-trips through the
        # resilient driver on SPD (geo), indefinite (normal), and
        # clustered spectra without tripping a single detector.
        a, _ = generate_symmetric(
            64, distribution=dist, cond=1e2, rng=np.random.default_rng(3)
        )
        res = syevd_2stage(a, b=8, nb=32, precision=precision)
        assert res.resilience_report.empty, res.resilience_report.summary()
        eps = Precision.from_name(precision).machine_eps
        assert eig_error(res, a) < 5e3 * eps * 64


# ---------------------------------------------------------------------------
# Fault recovery per phase (the acceptance criterion)
# ---------------------------------------------------------------------------


PHASE_FAULTS = [
    ("panel_*", "panel factorization"),      # TSQR tree / WY reconstruction
    ("wy_right", "deferred trailing update"),
    ("wy_full_right", "big-block trailing update"),
    ("bulge", "bulge chase"),
]


class TestEscalateRecovery:
    @pytest.mark.parametrize("site,label", PHASE_FAULTS, ids=[s for s, _ in PHASE_FAULTS])
    @pytest.mark.parametrize("kind", ["nan", "overflow"])
    def test_transient_fault_recovers(self, sym96, site, label, kind):
        inj = FaultInjector(FaultSpec(site=site, kind=kind, call_index=0))
        res = syevd_2stage(sym96, b=8, nb=32, precision="fp32", faults=inj)
        rep = res.resilience_report
        assert rep.faults_injected, f"{label}: fault never fired"
        assert rep.detections, f"{label}: no detector fired"
        assert rep.retries >= 1
        # Recovery accuracy within the (escalated) run's eps bound.
        assert eig_error(res, sym96) < 5e3 * Precision.FP32.machine_eps * 96

    def test_escalation_recorded_with_phase_and_panel(self, sym96):
        inj = FaultInjector(FaultSpec(site="wy_right", kind="nan", call_index=1))
        res = syevd_2stage(sym96, b=8, nb=32, precision="fp32", faults=inj)
        escs = res.resilience_report.escalations
        assert escs and escs[0].phase == "sbr.panel"
        assert escs[0].from_precision == "fp32"
        assert escs[0].to_precision == "fp64"
        assert escs[0].panel is not None

    def test_fp16_ladder_climbs_one_rung(self, sym96):
        inj = FaultInjector(FaultSpec(site="panel_*", kind="nan", call_index=0))
        res = syevd_2stage(sym96, b=8, nb=32, precision="fp16_tc", faults=inj)
        escs = res.resilience_report.escalations
        assert [(e.from_precision, e.to_precision) for e in escs] == [
            ("fp16_tc", "fp16_ec_tc")
        ]

    def test_zy_method_recovers(self, sym96):
        inj = FaultInjector(FaultSpec(site="zy_aw", kind="nan", call_index=1))
        res = syevd_2stage(sym96, b=8, method="zy", precision="fp32", faults=inj)
        rep = res.resilience_report
        assert rep.detections and rep.retries >= 1
        assert eig_error(res, sym96) < 5e3 * Precision.FP32.machine_eps * 96

    def test_selected_driver_recovers(self, sym96):
        inj = FaultInjector(FaultSpec(site="wy_right", kind="inf", call_index=0))
        res = syevd_selected(sym96, select=(0, 5), b=8, nb=32,
                             precision="fp32", faults=inj)
        rep = res.resilience_report
        assert rep.detections
        ref = np.linalg.eigvalsh(sym96)[:5]
        assert np.abs(res.eigenvalues - ref).max() < 5e3 * Precision.FP32.machine_eps * 96

    def test_silent_sign_flip_caught_by_drift_detectors(self, sym96):
        # sign_flip leaves all entries finite — only the invariant-drift
        # detectors (orthogonality / symmetry / norm) can see it.
        inj = FaultInjector(
            FaultSpec(site="panel_reconstruct", kind="sign_flip",
                      call_index=0, fraction=0.25)
        )
        res = syevd_2stage(sym96, b=8, nb=32, precision="fp32", faults=inj)
        rep = res.resilience_report
        assert any(d.detector == "orthogonality" for d in rep.detections)
        assert eig_error(res, sym96) < 5e3 * Precision.FP32.machine_eps * 96


# ---------------------------------------------------------------------------
# raise / best_effort modes
# ---------------------------------------------------------------------------


class TestDegradationModes:
    @pytest.mark.parametrize("site,phase", [
        ("panel_*", "sbr.panel"),
        ("wy_right", "sbr.panel"),
        ("bulge", "bulge"),
    ])
    def test_raise_mode_names_phase(self, sym96, site, phase):
        inj = FaultInjector(FaultSpec(site=site, kind="nan", call_index=0))
        with pytest.raises(NumericalBreakdownError) as ei:
            syevd_2stage(sym96, b=8, nb=32, precision="fp32",
                         faults=inj, on_breakdown="raise")
        assert ei.value.phase == phase
        assert phase in str(ei.value)

    def test_escalate_exhausts_budget_then_raises(self, sym96):
        inj = FaultInjector(
            FaultSpec(site="panel_*", kind="nan", call_index=0, count=10**6)
        )
        with pytest.raises((NumericalBreakdownError, SingularMatrixError)):
            syevd_2stage(sym96, b=8, nb=32, precision="fp32", faults=inj,
                         ladder=EscalationLadder(max_retries=2))

    def test_best_effort_completes_on_persistent_overflow(self, sym96):
        inj = FaultInjector(
            FaultSpec(site="wy_right", kind="overflow", call_index=0, count=10**6)
        )
        res = syevd_2stage(sym96, b=8, nb=32, precision="fp32", faults=inj,
                           on_breakdown="best_effort",
                           ladder=EscalationLadder(max_retries=1))
        rep = res.resilience_report
        assert rep.best_effort
        assert np.isfinite(res.eigenvalues).all()

    def test_best_effort_propagates_structural_failure(self, sym96):
        # A persistent NaN corrupts even the detector-suppressed final
        # pass; the structural guards must end the run, not loop forever.
        inj = FaultInjector(
            FaultSpec(site="panel_*", kind="nan", call_index=0, count=10**6)
        )
        with pytest.raises(ReproError):
            syevd_2stage(sym96, b=8, nb=32, precision="fp32", faults=inj,
                         on_breakdown="best_effort",
                         ladder=EscalationLadder(max_retries=1))

    def test_faults_without_resilience_layer_rejected(self, sym96):
        inj = FaultInjector(FaultSpec(site="bulge", kind="nan"))
        with pytest.raises(ReproError, match="resilience"):
            syevd_2stage(sym96, b=8, nb=32, faults=inj, on_breakdown=None)


# ---------------------------------------------------------------------------
# Obs manifest visibility
# ---------------------------------------------------------------------------


class TestManifestVisibility:
    def test_report_and_spans_land_in_manifest(self, tmp_path):
        from repro.obs.manifest import load_manifest
        from repro.obs.record import record_syevd

        inj = FaultInjector(FaultSpec(site="wy_right", kind="nan", call_index=0))
        run = record_syevd(
            n=64, b=8, nb=32, precision="fp32", seed=5, probes=False,
            faults=inj, path=str(tmp_path / "faulted.jsonl"),
        )
        man = load_manifest(run.path)
        assert man.resilience is not None
        assert man.resilience["detections"]
        assert man.resilience["escalations"]
        assert man.resilience["faults_injected"]
        names = {s.name for s in man.spans}
        assert "resilience.detect" in names
        assert "resilience.escalate" in names
        assert "resilience.fault" in names

    def test_clean_manifest_reports_clean(self, tmp_path):
        from repro.obs.manifest import load_manifest
        from repro.obs.record import record_syevd

        run = record_syevd(
            n=64, b=8, nb=32, precision="fp32", seed=5, probes=False,
            path=str(tmp_path / "clean.jsonl"),
        )
        man = load_manifest(run.path)
        assert man.resilience is not None
        assert man.resilience["detections"] == []
        assert man.resilience["retries"] == 0


# ---------------------------------------------------------------------------
# Input validation satellites
# ---------------------------------------------------------------------------


class TestInputValidation:
    def make_bad(self, rng, value=np.nan):
        a = random_symmetric(32, rng)
        a[3, 4] = a[4, 3] = value
        return a

    @pytest.mark.parametrize("value", [np.nan, np.inf])
    def test_syevd_2stage_rejects_nonfinite(self, rng, value):
        with pytest.raises(ShapeError, match="non-finite"):
            syevd_2stage(self.make_bad(rng, value), b=4, nb=16)

    def test_syevd_1stage_rejects_nonfinite(self, rng):
        with pytest.raises(ShapeError, match="non-finite"):
            syevd_1stage(self.make_bad(rng))

    def test_syevd_selected_rejects_nonfinite(self, rng):
        with pytest.raises(ShapeError, match="non-finite"):
            syevd_selected(self.make_bad(rng), select=(0, 2), b=4, nb=16)

    def test_sbr_wy_rejects_nonfinite(self, rng):
        with pytest.raises(ShapeError, match=r"nan at \[3, 4\]"):
            sbr_wy(self.make_bad(rng), 4, 16)

    def test_sbr_zy_rejects_nonfinite(self, rng):
        with pytest.raises(ShapeError, match="non-finite"):
            sbr_zy(self.make_bad(rng), 4)

    def test_gate_skippable(self, rng):
        # check_finite=False hands the NaN to the solver (which then
        # reports breakdown through the resilience layer instead).
        with pytest.raises(ReproError):
            syevd_2stage(self.make_bad(rng), b=4, nb=16,
                         check_finite=False, on_breakdown="raise")

    def test_error_message_counts_and_locates(self, rng):
        a = random_symmetric(16, rng)
        a[0, 1] = np.nan
        a[5, 6] = np.inf
        with pytest.raises(ShapeError, match="2 non-finite"):
            syevd_2stage(a, b=4, nb=8)


# ---------------------------------------------------------------------------
# Structured errors (satellites)
# ---------------------------------------------------------------------------


class TestStructuredErrors:
    def test_convergence_error_renders_state(self):
        exc = ConvergenceError("did not converge", iterations=30,
                              residual=1.25e-3, phase="tridiag_solve")
        text = str(exc)
        assert "iterations=30" in text
        assert "residual=1.250e-03" in text
        assert "phase=tridiag_solve" in text

    def test_convergence_error_backward_compatible(self):
        exc = ConvergenceError("plain message")
        assert str(exc) == "plain message"
        assert exc.iterations is None and exc.phase is None

    def test_ql_failure_carries_iterations(self):
        from repro.eig.qliter import tridiag_eig_ql

        # A pathological tridiagonal QL cannot settle: NaN off-diagonal is
        # caught by validation, so force failure via the iteration cap by
        # monkeypatching is avoided — instead just check the structured
        # fields survive a driver re-raise.
        exc = ConvergenceError("x", iterations=3, residual=0.5)
        try:
            try:
                raise exc
            except ConvergenceError as inner:
                if inner.phase is None:
                    inner.phase = "tridiag_solve"
                raise
        except ConvergenceError as outer:
            assert outer is exc
            assert outer.phase == "tridiag_solve"

    def test_breakdown_error_to_dict(self):
        exc = NumericalBreakdownError(
            "boom", phase="sbr.panel", panel=2, detector="nonfinite",
            site="wy_right", precision="fp16_tc",
        )
        d = exc.to_dict()
        assert d["phase"] == "sbr.panel"
        assert d["panel"] == 2
        assert d["detector"] == "nonfinite"


# ---------------------------------------------------------------------------
# Degenerate-pivot regression (reconstruct_wy satellite)
# ---------------------------------------------------------------------------


class TestReconstructDegeneracy:
    def test_nonfinite_q_raises_with_pivot_location(self, rng):
        from repro.la.reconstruct import reconstruct_wy
        from repro.la.tsqr import tsqr

        q, _ = tsqr(rng.standard_normal((32, 6)))
        q = np.array(q)
        q[:, 3] = np.nan  # corrupted panel column -> NaN pivot at j=3
        with pytest.raises(SingularMatrixError) as ei:
            reconstruct_wy(q)
        assert ei.value.column == 3
        assert "column 3" in str(ei.value)

    def test_sbr_attaches_panel_index(self, rng):
        # Through the full band reduction, the panel index is attached to
        # the reconstruction failure (raise mode: no retry masking it).
        a = random_symmetric(48, rng)
        inj = FaultInjector(
            FaultSpec(site="panel_reconstruct", kind="nan", call_index=2, count=10**6)
        )
        with pytest.raises((SingularMatrixError, NumericalBreakdownError)) as ei:
            syevd_2stage(a, b=4, nb=16, precision="fp32", faults=inj,
                         on_breakdown="raise")
        assert ei.value.panel is not None

    def test_healthy_reconstruction_unaffected(self, rng):
        from repro.la.reconstruct import reconstruct_wy
        from repro.la.tsqr import tsqr

        x = rng.standard_normal((24, 5))
        q, r = tsqr(x)
        w, y, s = reconstruct_wy(q)
        qs = np.eye(24)[:, :5] - w @ y[:5, :].T
        np.testing.assert_allclose(qs, np.asarray(q) * s, atol=1e-12)
