"""Wall-clock budget guards: structured BudgetExceededError from solvers.

Time is injected through the telemetry clock (``collect(clock=...)``), so
every test is deterministic — no real sleeps, no flaky timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig.budget import WallClockBudget
from repro.eig.inverse_iteration import tridiag_inverse_iteration
from repro.eig.lobpcg import lobpcg
from repro.eig.qdwh import qdwh_eig, qdwh_polar
from repro.eig.qliter import tridiag_eig_ql
from repro.errors import BudgetExceededError, ConfigurationError, ConvergenceError
from repro.obs import spans as obs

from conftest import random_symmetric


class FakeClock:
    """Each read advances one second: any budget < 1 s trips immediately."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


@pytest.fixture
def tridiag(rng):
    d = rng.standard_normal(24)
    e = rng.standard_normal(23)
    return d, e


class TestWallClockBudget:
    def test_none_budget_is_inert(self):
        budget = WallClockBudget(None, phase="x")
        assert not budget.active
        assert budget.elapsed() == 0.0
        budget.check(iterations=10**9)  # never raises

    def test_rejects_nonpositive_budget(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ConfigurationError, match="max_seconds"):
                WallClockBudget(bad, phase="x")

    def test_error_carries_full_context(self):
        with obs.collect(clock=FakeClock()):
            budget = WallClockBudget(0.5, phase="test_phase")
            with pytest.raises(BudgetExceededError) as ei:
                budget.check(iterations=3, residual=1e-2)
        err = ei.value
        assert isinstance(err, ConvergenceError)  # existing handlers still work
        assert err.phase == "test_phase"
        assert err.iterations == 3
        assert err.residual == 1e-2
        assert err.budget == 0.5 and err.elapsed > 0.5
        assert "wall-clock budget" in str(err)

    def test_generous_budget_never_trips(self, tridiag):
        d, e = tridiag
        with obs.collect(clock=FakeClock(step=1e-9)):
            lam, _ = tridiag_eig_ql(d, e, max_seconds=60.0)
        t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
        np.testing.assert_allclose(lam, np.linalg.eigvalsh(t), atol=1e-10)


class TestSolverBudgets:
    def expect_trip(self, phase, fn, *args, **kw):
        with obs.collect(clock=FakeClock()):
            with pytest.raises(BudgetExceededError) as ei:
                fn(*args, **kw)
        assert ei.value.phase == phase
        assert ei.value.budget == kw["max_seconds"]
        assert ei.value.elapsed > kw["max_seconds"]

    def test_ql_iteration(self, tridiag):
        d, e = tridiag
        self.expect_trip("ql_iteration", tridiag_eig_ql, d, e, max_seconds=0.5)

    def test_inverse_iteration(self, tridiag):
        d, e = tridiag
        t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
        lam = np.linalg.eigvalsh(t)
        self.expect_trip("inverse_iteration", tridiag_inverse_iteration,
                         d, e, lam, max_seconds=0.5)

    def test_qdwh_polar(self, rng):
        a = random_symmetric(16, rng) + 20.0 * np.eye(16)
        self.expect_trip("qdwh_polar", qdwh_polar, a, max_seconds=0.5)

    def test_qdwh_eig_shares_one_clock_through_recursion(self, rng):
        a = random_symmetric(40, rng)
        # The budget trips inside the recursion/polar iterations, but the
        # phase names the entry point the caller budgeted.
        self.expect_trip("qdwh_eig", qdwh_eig, a, max_seconds=0.5)

    def test_lobpcg(self, rng):
        a = random_symmetric(30, rng)
        self.expect_trip("lobpcg", lobpcg, a, 3, max_seconds=0.5)

    def test_solvers_unaffected_without_budget(self, tridiag):
        d, e = tridiag
        lam, z = tridiag_eig_ql(d, e)
        t = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
        np.testing.assert_allclose(lam, np.linalg.eigvalsh(t), atol=1e-10)
        np.testing.assert_allclose(z @ np.diag(lam) @ z.T, t, atol=1e-10)


class TestBudgetDeadlineApi:
    """remaining() / expired / until() — the serving layer's SLO hooks."""

    def test_remaining_counts_down_and_clamps(self):
        clk = FakeClock(step=1.0)
        with obs.collect(clock=clk):
            budget = WallClockBudget(5.0, phase="x")
            first = budget.remaining()
            assert first is not None and first <= 5.0
            for _ in range(10):
                clk()
            assert budget.remaining() == 0.0
            assert budget.expired

    def test_inactive_budget_has_no_remaining(self):
        budget = WallClockBudget(None, phase="x")
        assert budget.remaining() is None
        assert not budget.expired

    def test_until_none_is_disabled(self):
        budget = WallClockBudget.until(None, phase="x")
        assert not budget.active

    def test_until_future_deadline(self):
        with obs.collect(clock=FakeClock(step=0.0)):
            t0 = obs.now()
            budget = WallClockBudget.until(t0 + 30.0, phase="x")
            assert budget.active
            assert budget.max_seconds == pytest.approx(30.0)

    def test_until_past_deadline_trips_first_check(self):
        clk = FakeClock(step=1.0)
        with obs.collect(clock=clk):
            budget = WallClockBudget.until(obs.now() - 10.0, phase="x")
            with pytest.raises(BudgetExceededError):
                budget.check(iterations=0)
