"""Tests for GEMM trace records, aggregation, and engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gemm import (
    EcTensorCoreEngine,
    Fp64Engine,
    GemmRecord,
    GemmTrace,
    SgemmEngine,
    TensorCoreEngine,
    make_engine,
)
from repro.gemm.engine import PlainEngine
from repro.precision import Precision


class TestGemmRecord:
    def test_flops(self):
        assert GemmRecord(3, 4, 5).flops == 2 * 3 * 4 * 5

    def test_min_dim(self):
        assert GemmRecord(100, 7, 50).min_dim == 7

    def test_shape(self):
        assert GemmRecord(2, 3, 4).shape == (2, 3, 4)

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_nonpositive_dims(self, bad):
        with pytest.raises(ValueError):
            GemmRecord(*bad)

    def test_frozen(self):
        rec = GemmRecord(1, 2, 3)
        with pytest.raises(AttributeError):
            rec.m = 5


class TestGemmTrace:
    def test_record_and_len(self):
        tr = GemmTrace()
        tr.record(2, 3, 4, tag="a")
        tr.record(5, 6, 7, tag="b")
        assert len(tr) == 2

    def test_total_flops(self):
        tr = GemmTrace()
        tr.record(2, 3, 4)
        tr.record(1, 1, 1)
        assert tr.total_flops == 48 + 2

    def test_by_tag(self):
        tr = GemmTrace()
        tr.record(2, 2, 2, tag="x")
        tr.record(3, 3, 3, tag="y")
        tr.record(4, 4, 4, tag="x")
        assert len(tr.by_tag("x")) == 2
        assert tr.tags() == {"x": 2, "y": 1}

    def test_flops_by_tag(self):
        tr = GemmTrace()
        tr.record(2, 2, 2, tag="x")
        tr.record(2, 2, 2, tag="x")
        assert tr.flops_by_tag() == {"x": 32}

    def test_shape_multiset_order_insensitive(self):
        t1, t2 = GemmTrace(), GemmTrace()
        t1.record(2, 3, 4)
        t1.record(5, 6, 7)
        t2.record(5, 6, 7)
        t2.record(2, 3, 4)
        assert t1.shape_multiset() == t2.shape_multiset()

    def test_extend_with_trace_and_iterable(self):
        t1, t2 = GemmTrace(), GemmTrace()
        t1.record(1, 1, 1)
        t2.record(2, 2, 2)
        t1.extend(t2)
        t1.extend([GemmRecord(3, 3, 3)])
        assert len(t1) == 3

    def test_filter(self):
        tr = GemmTrace()
        tr.record(10, 10, 10, tag="big")
        tr.record(1, 1, 1, tag="small")
        assert len(tr.filter(lambda r: r.flops > 100)) == 1

    def test_summary_mentions_tags(self):
        tr = GemmTrace()
        tr.record(8, 8, 8, tag="trailing")
        s = tr.summary()
        assert "trailing" in s and "1 calls" in s

    def test_iteration_and_indexing(self):
        tr = GemmTrace()
        tr.record(1, 2, 3, tag="t")
        assert list(tr)[0].tag == "t"
        assert tr[0].shape == (1, 2, 3)


class TestTraceAggregationEdgeCases:
    def test_empty_trace_aggregates(self):
        tr = GemmTrace()
        assert len(tr) == 0
        assert tr.total_flops == 0
        assert tr.flops_by_tag() == {}
        assert tr.tags() == {}
        assert tr.shape_multiset() == {}
        assert tr.shape_multiset_by_tag() == {}
        assert "0 calls" in tr.summary()

    def test_syr2k_flops_are_half_of_two_gemms(self):
        syr2k = GemmRecord(6, 6, 3, op="syr2k")
        two_gemms = GemmTrace([GemmRecord(6, 6, 3), GemmRecord(6, 6, 3)])
        assert 2 * syr2k.flops == two_gemms.total_flops

    def test_syr2k_requires_square_output(self):
        with pytest.raises(ValueError):
            GemmRecord(4, 5, 3, op="syr2k")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            GemmRecord(2, 2, 2, op="trsm")

    def test_mixed_engine_filtering(self):
        tr = GemmTrace()
        tr.record(2, 2, 2, tag="a", engine="tc")
        tr.record(3, 3, 3, tag="a", engine="sgemm")
        tr.record(4, 4, 4, tag="b", engine="tc")
        tc_only = tr.filter(lambda r: r.engine == "tc")
        assert len(tc_only) == 2
        assert tc_only.total_flops == 2 * 8 + 2 * 64
        assert tc_only.tags() == {"a": 1, "b": 1}
        # Filtering returns a new trace; the original is untouched.
        assert len(tr) == 3


class TestTraceSerialization:
    def _trace(self) -> GemmTrace:
        tr = GemmTrace()
        tr.record(3, 4, 5, tag="trailing", engine="tc")
        tr.record(7, 7, 2)
        tr.add(GemmRecord(6, 6, 3, tag="zy_syr2k", engine="sgemm", op="syr2k"))
        return tr

    def test_round_trip_json_string(self):
        tr = self._trace()
        restored = GemmTrace.from_json(tr.to_json())
        assert restored.records == tr.records
        assert restored.total_flops == tr.total_flops

    def test_round_trip_dict(self):
        tr = self._trace()
        assert GemmTrace.from_dict(tr.to_dict()).records == tr.records

    def test_empty_round_trip(self):
        assert GemmTrace.from_json(GemmTrace().to_json()).records == []

    def test_defaults_omitted_in_dict(self):
        d = GemmRecord(1, 2, 3).to_dict()
        assert d == {"m": 1, "n": 2, "k": 3}

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError):
            GemmTrace.from_json("[1, 2, 3]")

    def test_from_dict_revalidates(self):
        with pytest.raises(ValueError):
            GemmTrace.from_dict({"records": [{"m": 0, "n": 1, "k": 1}]})

    def test_json_is_compact_single_line(self):
        text = self._trace().to_json()
        assert "\n" not in text and " " not in text


class TestTraceThreadSafety:
    def test_concurrent_recording_through_shared_engine(self, rng):
        import threading

        eng = SgemmEngine(record=True)
        a = rng.standard_normal((8, 8)).astype(np.float32)
        n_threads, n_calls = 8, 50

        def work():
            for _ in range(n_calls):
                eng.gemm(a, a, tag="mt")

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(eng.trace) == n_threads * n_calls
        assert eng.trace.total_flops == n_threads * n_calls * 2 * 8 * 8 * 8


class TestEngines:
    @pytest.mark.parametrize(
        "engine_cls", [SgemmEngine, Fp64Engine, TensorCoreEngine, EcTensorCoreEngine, PlainEngine]
    )
    def test_gemm_shape(self, rng, engine_cls):
        eng = engine_cls()
        a = rng.standard_normal((6, 4)).astype(np.float32)
        b = rng.standard_normal((4, 5)).astype(np.float32)
        assert eng.gemm(a, b).shape == (6, 5)

    def test_recording(self, rng):
        eng = SgemmEngine(record=True)
        eng.gemm(rng.standard_normal((3, 4)), rng.standard_normal((4, 5)), tag="t")
        assert len(eng.trace) == 1
        assert eng.trace[0] == GemmRecord(3, 5, 4, tag="t", engine="sgemm")

    def test_no_recording_by_default(self, rng):
        eng = SgemmEngine()
        eng.gemm(rng.standard_normal((3, 4)), rng.standard_normal((4, 5)))
        assert eng.trace is None

    def test_reset_trace(self, rng):
        eng = SgemmEngine(record=True)
        eng.gemm(rng.standard_normal((3, 3)), rng.standard_normal((3, 3)))
        eng.reset_trace()
        assert len(eng.trace) == 0

    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            SgemmEngine().gemm(rng.standard_normal((3, 4)), rng.standard_normal((5, 6)))

    def test_sgemm_returns_float32(self, rng):
        out = SgemmEngine().gemm(rng.standard_normal((3, 3)), rng.standard_normal((3, 3)))
        assert out.dtype == np.float32

    def test_fp64_returns_float64(self, rng):
        out = Fp64Engine().gemm(
            rng.standard_normal((3, 3)).astype(np.float32),
            rng.standard_normal((3, 3)).astype(np.float32),
        )
        assert out.dtype == np.float64

    def test_plain_preserves_dtype(self, rng):
        a = rng.standard_normal((3, 3))
        assert PlainEngine().gemm(a, a).dtype == np.float64
        assert PlainEngine().gemm(a.astype(np.float32), a.astype(np.float32)).dtype == np.float32

    def test_tc_engine_error_level(self, rng):
        a = rng.standard_normal((32, 32)).astype(np.float32)
        b = rng.standard_normal((32, 32)).astype(np.float32)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        err_tc = np.abs(TensorCoreEngine().gemm(a, b) - exact).max()
        err_ec = np.abs(EcTensorCoreEngine().gemm(a, b) - exact).max()
        assert err_tc > 100 * err_ec

    def test_tc_engine_tf32_format(self, rng):
        eng = TensorCoreEngine(operand_format="tf32")
        assert eng.precision is Precision.TF32_TC

    def test_make_engine_dispatch(self):
        assert isinstance(make_engine("fp32"), SgemmEngine)
        assert isinstance(make_engine("fp64"), Fp64Engine)
        assert isinstance(make_engine("fp16_tc"), TensorCoreEngine)
        assert isinstance(make_engine("fp16_ec_tc"), EcTensorCoreEngine)
        assert isinstance(make_engine(Precision.BF16_TC), TensorCoreEngine)

    def test_make_engine_records(self, rng):
        eng = make_engine("fp32", record=True)
        eng.gemm(rng.standard_normal((2, 2)), rng.standard_normal((2, 2)))
        assert len(eng.trace) == 1

    def test_make_engine_unknown(self):
        with pytest.raises(ValueError):
            make_engine("fp12")

    def test_working_dtype(self):
        assert make_engine("fp64").working_dtype == np.float64
        assert make_engine("fp16_tc").working_dtype == np.float32
