"""Tests for band and tridiagonal storage helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.la import (
    band_to_dense,
    bandwidth_of,
    dense_to_tridiag,
    extract_band,
    is_banded,
    to_symmetric_band_storage,
    tridiag_to_dense,
)
from tests.conftest import random_symmetric


class TestBandwidth:
    def test_diagonal(self):
        assert bandwidth_of(np.diag([1.0, 2.0, 3.0])) == 0

    def test_tridiagonal(self):
        t = tridiag_to_dense([1.0, 2.0, 3.0], [4.0, 5.0])
        assert bandwidth_of(t) == 1

    def test_dense(self, rng):
        a = random_symmetric(6, rng)
        assert bandwidth_of(a) == 5

    def test_tolerance(self, rng):
        a = extract_band(random_symmetric(8, rng), 2)
        a[7, 0] = 1e-9
        assert bandwidth_of(a) == 7
        assert bandwidth_of(a, tol=1e-6) == 2

    def test_zero_matrix(self):
        assert bandwidth_of(np.zeros((4, 4))) == 0

    def test_is_banded(self, rng):
        a = extract_band(random_symmetric(10, rng), 3)
        assert is_banded(a, 3)
        assert is_banded(a, 5)
        assert not is_banded(a, 2)

    def test_is_banded_negative(self, rng):
        with pytest.raises(ShapeError):
            is_banded(random_symmetric(4, rng), -1)


class TestExtractBand:
    def test_zeroes_outside(self, rng):
        a = random_symmetric(8, rng)
        ab = extract_band(a, 2)
        assert bandwidth_of(ab) <= 2
        # In-band entries untouched.
        for i in range(8):
            for j in range(max(0, i - 2), min(8, i + 3)):
                assert ab[i, j] == a[i, j]

    def test_band_zero(self, rng):
        a = random_symmetric(5, rng)
        np.testing.assert_array_equal(extract_band(a, 0), np.diag(np.diagonal(a)))

    def test_negative_band(self, rng):
        with pytest.raises(ShapeError):
            extract_band(random_symmetric(4, rng), -1)


class TestBandStorage:
    @pytest.mark.parametrize("n,b", [(6, 0), (6, 1), (8, 3), (5, 4), (4, 6)])
    def test_roundtrip(self, rng, n, b):
        a = extract_band(random_symmetric(n, rng), b)
        ab = to_symmetric_band_storage(a, b)
        assert ab.shape == (b + 1, n)
        np.testing.assert_allclose(band_to_dense(ab, n), a, atol=0)

    def test_storage_layout(self):
        a = tridiag_to_dense([1.0, 2.0, 3.0], [9.0, 8.0])
        ab = to_symmetric_band_storage(a, 1)
        np.testing.assert_array_equal(ab[0], [1, 2, 3])
        np.testing.assert_array_equal(ab[1], [9, 8, 0])

    def test_band_to_dense_shape_check(self):
        with pytest.raises(ShapeError):
            band_to_dense(np.zeros((2, 5)), 4)


class TestTridiagonalHelpers:
    def test_tridiag_to_dense(self):
        t = tridiag_to_dense([1.0, 2.0], [5.0])
        np.testing.assert_array_equal(t, [[1, 5], [5, 2]])

    def test_tridiag_single(self):
        np.testing.assert_array_equal(tridiag_to_dense([3.0], []), [[3.0]])

    def test_tridiag_shape_mismatch(self):
        with pytest.raises(ShapeError):
            tridiag_to_dense([1.0, 2.0], [1.0, 2.0])

    def test_dense_to_tridiag_roundtrip(self, rng):
        d = rng.standard_normal(7)
        e = rng.standard_normal(6)
        d2, e2 = dense_to_tridiag(tridiag_to_dense(d, e))
        np.testing.assert_array_equal(d2, d)
        np.testing.assert_array_equal(e2, e)

    def test_dense_to_tridiag_guard(self, rng):
        a = random_symmetric(6, rng)
        with pytest.raises(ShapeError, match="not tridiagonal"):
            dense_to_tridiag(a, tol=1e-10)

    def test_dense_to_tridiag_guard_passes_tridiagonal(self, rng):
        t = tridiag_to_dense(rng.standard_normal(6), rng.standard_normal(5))
        dense_to_tridiag(t, tol=1e-12)  # no raise
