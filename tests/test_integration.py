"""Cross-module integration tests: the full paper pipeline end to end."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import eigh

from repro import (
    PerfModel,
    Precision,
    backward_error,
    bulge_chase,
    eigenvalue_error,
    generate_symmetric,
    make_engine,
    orthogonality_error,
    sbr_wy,
    sbr_zy,
    syevd_1stage,
    syevd_2stage,
    tridiag_eig_dc,
)
from repro.la import tridiag_to_dense
from repro.matrices import TABLE_MATRIX_SPECS
from repro.matrices.generate import generate_from_spec


class TestFullPipelinePrecisionLadder:
    """The paper's central numerical claim, end to end: error tracks the
    precision policy (fp64 ≈ exact, fp32/EC ≈ 1e-7, fp16-TC ≈ 1e-4)."""

    @pytest.fixture(scope="class")
    def problem(self):
        rng = np.random.default_rng(42)
        a, lam = generate_symmetric(160, distribution="geo", cond=1e3, rng=rng)
        return a, lam

    @pytest.mark.parametrize(
        "precision,bound",
        [
            (Precision.FP64, 1e-13),
            (Precision.FP32, 1e-6),
            (Precision.FP16_EC_TC, 1e-6),
            (Precision.FP16_TC, 1e-3),
        ],
    )
    def test_eigenvalue_ladder(self, problem, precision, bound):
        a, lam_true = problem
        res = syevd_2stage(a, b=8, nb=32, precision=precision, want_vectors=False)
        assert eigenvalue_error(lam_true, res.eigenvalues) < bound

    def test_tc_strictly_worse_than_ec(self, problem):
        a, lam_true = problem
        e_tc = eigenvalue_error(
            lam_true,
            syevd_2stage(a, b=8, nb=32, precision="fp16_tc", want_vectors=False).eigenvalues,
        )
        e_ec = eigenvalue_error(
            lam_true,
            syevd_2stage(a, b=8, nb=32, precision="fp16_ec_tc", want_vectors=False).eigenvalues,
        )
        assert e_ec * 10 < e_tc


class TestStageChaining:
    def test_manual_pipeline_equals_driver(self, rng):
        a, _ = generate_symmetric(96, distribution="uniform", rng=rng)
        eng = make_engine("fp64")
        res_sbr = sbr_wy(a, 8, 32, engine=eng, want_q=True)
        d, e, q2 = bulge_chase(np.asarray(res_sbr.band, dtype=np.float64), 8, want_q=True)
        lam, v = tridiag_eig_dc(d, e)
        x = np.asarray(res_sbr.q, dtype=np.float64) @ (q2 @ v)

        driver = syevd_2stage(a, b=8, nb=32, precision="fp64")
        np.testing.assert_allclose(lam, driver.eigenvalues, atol=1e-12)
        np.testing.assert_allclose(np.abs(x.T @ driver.eigenvectors), np.eye(96), atol=1e-8)

    def test_wy_and_zy_pipelines_agree(self, rng):
        a, _ = generate_symmetric(80, distribution="normal", rng=rng)
        lam_wy = syevd_2stage(a, b=8, nb=16, method="wy", precision="fp64", want_vectors=False).eigenvalues
        lam_zy = syevd_2stage(a, b=8, method="zy", precision="fp64", want_vectors=False).eigenvalues
        np.testing.assert_allclose(lam_wy, lam_zy, atol=1e-11)

    def test_one_and_two_stage_agree(self, rng):
        a, _ = generate_symmetric(64, distribution="arith", cond=100, rng=rng)
        lam1 = syevd_1stage(a, want_vectors=False).eigenvalues
        lam2 = syevd_2stage(a, b=4, nb=16, precision="fp64", want_vectors=False).eigenvalues
        np.testing.assert_allclose(lam1, lam2, atol=1e-11)

    def test_intermediate_band_is_banded_and_similar(self, rng):
        from repro.la import bandwidth_of

        a, _ = generate_symmetric(72, distribution="geo", cond=10, rng=rng)
        res = syevd_2stage(a, b=8, nb=24, precision="fp64")
        assert bandwidth_of(res.sbr.band, tol=1e-10) <= 8
        np.testing.assert_allclose(
            np.linalg.eigvalsh(res.sbr.band), np.linalg.eigvalsh(a), atol=1e-10
        )
        t = tridiag_to_dense(*res.tridiagonal)
        np.testing.assert_allclose(
            np.linalg.eigvalsh(t), np.linalg.eigvalsh(a), atol=1e-10
        )


class TestAllMatrixClasses:
    @pytest.mark.parametrize("spec", TABLE_MATRIX_SPECS, ids=lambda s: s.label)
    def test_tc_pipeline_on_every_table_class(self, spec):
        rng = np.random.default_rng(abs(hash(spec.label)) % 2**31)
        a, _ = generate_from_spec(spec, 96, rng=rng)
        d_ref = eigh(a, eigvals_only=True)
        res = syevd_2stage(a, b=8, nb=32, precision="fp16_tc", want_vectors=False)
        assert eigenvalue_error(d_ref, res.eigenvalues) < 5e-4

    @pytest.mark.parametrize("spec", TABLE_MATRIX_SPECS[:4], ids=lambda s: s.label)
    def test_sbr_accuracy_metrics(self, spec):
        rng = np.random.default_rng(7)
        a, _ = generate_from_spec(spec, 96, rng=rng)
        res = sbr_wy(a, 8, 32, engine=make_engine("fp16_tc"), want_q=True)
        assert backward_error(a, res.q, res.band) < 5e-4
        assert orthogonality_error(res.q) < 5e-4


class TestTraceToModelPipeline:
    def test_recorded_trace_prices_like_symbolic(self, rng):
        """A numeric run's recorded GEMM stream and the symbolic stream give
        identical model times — the contract that lets the figures use
        symbolic traces at paper scale."""
        from repro.gemm.symbolic import is_algorithm_tag, trace_sbr_wy

        n, b, nb = 96, 8, 32
        a, _ = generate_symmetric(n, rng=rng)
        eng = make_engine("fp32", record=True)
        sbr_wy(a, b, nb, engine=eng, want_q=False, panel="blocked_qr")
        rec = eng.trace.filter(lambda r: is_algorithm_tag(r.tag))
        sym = trace_sbr_wy(n, b, nb, want_q=False, mirror=True)
        pm = PerfModel()
        assert pm.trace_time(rec, "tc") == pytest.approx(pm.trace_time(sym, "tc"))

    def test_evd_model_consistency_with_driver_shapes(self):
        pm = PerfModel()
        bd = pm.evd_time(8192, 128, 1024, variant="ours")
        assert bd.sbr > bd.transfer  # PCIe is not the bottleneck (paper §6.4.1)
        assert bd.total > bd.sbr


class TestPublicApi:
    def test_top_level_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_solver_zoo_agreement(self, rng):
        """Every full eigensolver family in the library agrees on one matrix."""
        import repro

        a, lam_true = generate_symmetric(72, distribution="uniform", rng=rng)
        lam_2s = repro.syevd_2stage(a, b=8, nb=24, precision="fp64",
                                    want_vectors=False).eigenvalues
        lam_1s = repro.syevd_1stage(a, want_vectors=False).eigenvalues
        lam_q, _ = repro.qdwh_eig(a)
        np.testing.assert_allclose(lam_2s, lam_true, atol=1e-10)
        np.testing.assert_allclose(lam_1s, lam_true, atol=1e-10)
        np.testing.assert_allclose(lam_q, lam_true, atol=1e-10)
        # Iterative solver on the extremes.
        lam_top, _, _ = repro.lobpcg(a, 3, largest=True, rng=rng, tol=1e-7,
                                     max_iter=500)
        np.testing.assert_allclose(lam_top, lam_true[-3:], atol=1e-6)

    def test_svd_routes_agree(self, rng):
        import repro

        a = rng.standard_normal((30, 18))
        s_ref = np.linalg.svd(a, compute_uv=False)
        _, s1, _ = repro.svd_direct(a)
        _, s2, _ = repro.svd_via_evd(a, precision="fp64")
        np.testing.assert_allclose(s1, s_ref, atol=1e-10)
        np.testing.assert_allclose(s2, s_ref, atol=1e-10)
