"""Tests for accuracy metrics and operation-count formulas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrices import random_orthogonal
from repro.metrics import (
    backward_error,
    eigenvalue_error,
    formw_flops,
    gemm_flops,
    orthogonality_error,
    sbr_wy_flops,
    sbr_zy_flops,
)
from repro.metrics.flops import panel_qr_flops, panel_wy_build_flops
from tests.conftest import random_symmetric


class TestBackwardError:
    def test_exact_decomposition_is_zero(self, rng):
        a = random_symmetric(12, rng)
        q = random_orthogonal(12, rng=rng)
        b = q.T @ a @ q
        assert backward_error(a, q, b) < 1e-15

    def test_scales_with_perturbation(self, rng):
        a = random_symmetric(10, rng)
        q = random_orthogonal(10, rng=rng)
        b = q.T @ a @ q
        b_pert = b + 1e-3 * random_symmetric(10, rng)
        assert backward_error(a, q, b_pert) > 1e-6

    def test_normalization_by_n(self, rng):
        # E_b divides by N * ||A||_F: doubling the perturbation doubles E_b.
        a = random_symmetric(10, rng)
        q = np.eye(10)
        p = random_symmetric(10, rng)
        e1 = backward_error(a, q, a + 1e-4 * p)
        e2 = backward_error(a, q, a + 2e-4 * p)
        assert e2 == pytest.approx(2 * e1, rel=1e-6)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            backward_error(random_symmetric(4, rng), np.eye(5), random_symmetric(4, rng))


class TestOrthogonalityError:
    def test_orthogonal_is_zero(self, rng):
        q = random_orthogonal(20, rng=rng)
        assert orthogonality_error(q) < 1e-15

    def test_scaled_matrix_nonzero(self, rng):
        q = 1.001 * random_orthogonal(10, rng=rng)
        assert orthogonality_error(q) > 1e-5

    def test_identity(self):
        assert orthogonality_error(np.eye(7)) == 0.0


class TestEigenvalueError:
    def test_identical_spectra(self, rng):
        d = rng.standard_normal(30)
        assert eigenvalue_error(d, d) == 0.0

    def test_order_insensitive(self, rng):
        d = rng.standard_normal(30)
        assert eigenvalue_error(d, d[::-1]) == 0.0

    def test_perturbation_scale(self, rng):
        d = np.sort(rng.standard_normal(16))
        d2 = d + 1e-5
        err = eigenvalue_error(d, d2)
        assert 0 < err < 1e-4

    def test_length_mismatch(self, rng):
        with pytest.raises(ShapeError):
            eigenvalue_error(rng.standard_normal(4), rng.standard_normal(5))


class TestFlopFormulas:
    def test_gemm_flops(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_panel_qr_formula(self):
        # Square QR: 2 n^2 (n - n/3) = (4/3) n^3.
        n = 30
        assert panel_qr_flops(n, n) == pytest.approx((4 / 3) * n**3, rel=1e-6)

    def test_panel_wy_formula(self):
        assert panel_wy_build_flops(100, 10) == 2 * 100 * 100

    def test_table2_zy_value(self):
        # Paper Table 2: ZY at n=32768, b=128 counts 0.70e14 operations.
        assert sbr_zy_flops(32768, 128) / 1e14 == pytest.approx(0.70, abs=0.02)

    def test_table2_wy_nb128_value(self):
        # Paper Table 2: WY at nb=128 counts 0.93e14 operations.
        assert sbr_wy_flops(32768, 128, 128) / 1e14 == pytest.approx(0.93, abs=0.02)

    def test_wy_flops_increase_with_nb(self):
        vals = [sbr_wy_flops(16384, 128, nb) for nb in (128, 512, 2048, 4096)]
        assert all(v2 > v1 for v1, v2 in zip(vals, vals[1:]))

    def test_wy_exceeds_zy(self):
        for nb in (128, 1024):
            assert sbr_wy_flops(8192, 128, nb) > sbr_zy_flops(8192, 128)

    def test_zy_leading_order_2n3(self):
        # GEMM-only ZY flops tend to 2 n^3 (no syr2k symmetry on TC).
        n = 16384
        assert sbr_zy_flops(n, 128, include_panel=False) == pytest.approx(
            2 * n**3, rel=0.03
        )

    def test_want_q_adds_flops(self):
        base = sbr_zy_flops(4096, 64)
        with_q = sbr_zy_flops(4096, 64, want_q=True)
        assert with_q > base

    def test_panel_toggle(self):
        assert sbr_wy_flops(2048, 32, 128, include_panel=False) < sbr_wy_flops(2048, 32, 128)

    def test_formw_flops_positive(self):
        blocks = [(128, 128), (256, 128), (384, 128)]
        assert formw_flops(4096, blocks) > 0
        assert formw_flops(4096, blocks, method="forward") > 0

    def test_flops_match_traced_gemms(self):
        # The GEMM part of the analytic count must equal the symbolic trace.
        from repro.gemm.symbolic import trace_sbr_wy, trace_sbr_zy

        n, b, nb = 1024, 32, 128
        assert sbr_zy_flops(n, b, include_panel=False) == trace_sbr_zy(n, b, want_q=False).total_flops
        assert (
            sbr_wy_flops(n, b, nb, include_panel=False)
            == trace_sbr_wy(n, b, nb, want_q=False).total_flops
        )
