"""Tests for spectrum distributions and symmetric matrix generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.matrices import (
    DISTRIBUTIONS,
    MatrixSpec,
    TABLE_MATRIX_SPECS,
    generate_symmetric,
    make_spectrum,
    random_orthogonal,
)
from repro.matrices.generate import generate_from_spec


class TestSpectra:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_positive_and_bounded(self, rng, name):
        s = make_spectrum(name, 100, cond=1e4, rng=rng)
        assert s.shape == (100,)
        assert np.all(s > 0)
        assert np.all(s <= 1.0 + 1e-6)  # cluster modes add 1e-8 jitter

    @pytest.mark.parametrize("name", ["arith", "geo", "cluster0", "cluster1"])
    @pytest.mark.parametrize("cond", [1e1, 1e3, 1e5])
    def test_condition_number(self, rng, name, cond):
        s = make_spectrum(name, 64, cond=cond, rng=rng)
        achieved = s.max() / s.min()
        assert achieved == pytest.approx(cond, rel=1e-4)

    def test_arith_is_arithmetic(self, rng):
        s = make_spectrum("arith", 10, cond=100, rng=rng)
        np.testing.assert_allclose(np.diff(s), np.diff(s)[0], rtol=1e-10)

    def test_geo_is_geometric(self, rng):
        s = make_spectrum("geo", 10, cond=100, rng=rng)
        ratios = s[1:] / s[:-1]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-10)

    def test_cluster0_shape(self, rng):
        s = make_spectrum("cluster0", 50, cond=1e5, rng=rng)
        assert s[0] == 1.0
        assert np.all(np.abs(s[1:] * 1e5 - 1.0) < 1e-4)

    def test_cluster1_shape(self, rng):
        s = make_spectrum("cluster1", 50, cond=1e5, rng=rng)
        assert np.sum(s < 0.5) == 1

    def test_unknown_distribution(self, rng):
        with pytest.raises(ConfigurationError):
            make_spectrum("zipf", 10, rng=rng)

    def test_bad_cond(self, rng):
        with pytest.raises(ConfigurationError):
            make_spectrum("geo", 10, cond=0.5, rng=rng)

    def test_bad_n(self, rng):
        with pytest.raises(ConfigurationError):
            make_spectrum("normal", 0, rng=rng)

    def test_n_equals_one(self, rng):
        for name in DISTRIBUTIONS:
            s = make_spectrum(name, 1, cond=10.0, rng=rng)
            assert s.shape == (1,)

    def test_deterministic_given_rng(self):
        s1 = make_spectrum("normal", 20, rng=np.random.default_rng(5))
        s2 = make_spectrum("normal", 20, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(s1, s2)


class TestRandomOrthogonal:
    @pytest.mark.parametrize("n", [1, 2, 10, 50])
    def test_orthogonal(self, rng, n):
        q = random_orthogonal(n, rng=rng)
        np.testing.assert_allclose(q @ q.T, np.eye(n), atol=1e-12)

    def test_haar_sign_fix(self):
        # With the Mezzadri fix the diagonal of R is positive, so repeated
        # draws should have dets of both signs (Haar property).
        rng = np.random.default_rng(0)
        dets = [np.sign(np.linalg.det(random_orthogonal(5, rng=rng))) for _ in range(20)]
        assert len(set(dets)) == 2

    def test_bad_n(self):
        with pytest.raises(ConfigurationError):
            random_orthogonal(0)


class TestGenerateSymmetric:
    def test_symmetric_and_spectrum(self, rng):
        a, lam = generate_symmetric(32, distribution="arith", cond=1e3, rng=rng)
        np.testing.assert_array_equal(a, a.T)
        np.testing.assert_allclose(np.linalg.eigvalsh(a), lam, atol=1e-12)

    def test_lam_sorted(self, rng):
        _, lam = generate_symmetric(16, rng=rng)
        assert np.all(np.diff(lam) >= 0)

    def test_positive_signs(self, rng):
        _, lam = generate_symmetric(16, signs="positive", rng=rng)
        assert np.all(lam > 0)

    def test_random_signs_indefinite(self, rng):
        _, lam = generate_symmetric(64, signs="random", rng=rng)
        assert np.any(lam < 0) and np.any(lam > 0)

    def test_condition_number(self, rng):
        a, lam = generate_symmetric(32, distribution="geo", cond=1e4, signs="positive", rng=rng)
        assert np.linalg.cond(a) == pytest.approx(1e4, rel=1e-3)

    def test_bad_signs(self, rng):
        with pytest.raises(ConfigurationError):
            generate_symmetric(8, signs="negative", rng=rng)

    def test_dtype(self, rng):
        a, _ = generate_symmetric(8, dtype=np.float32, rng=rng)
        assert a.dtype == np.float32


class TestTableSpecs:
    def test_ten_rows(self):
        assert len(TABLE_MATRIX_SPECS) == 10

    def test_labels_match_paper(self):
        labels = [s.label for s in TABLE_MATRIX_SPECS]
        assert labels[0] == "Normal"
        assert "SVD_Arith 1e5" in labels
        assert "SVD_Geo 1e3" in labels

    def test_generate_from_spec(self, rng):
        spec = MatrixSpec("test", "geo", 1e3)
        a, lam = generate_from_spec(spec, 24, rng=rng)
        assert a.shape == (24, 24)
        assert lam.shape == (24,)

    def test_all_specs_generate(self, rng):
        for spec in TABLE_MATRIX_SPECS:
            a, _ = generate_from_spec(spec, 16, rng=rng)
            np.testing.assert_array_equal(a, a.T)
