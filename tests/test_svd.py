"""Tests for the SVD and randomized low-rank package."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.matrices import generate_symmetric
from repro.svd import (
    block_lanczos_eig,
    low_rank_approx,
    randomized_eig,
    randomized_svd,
    svd_via_evd,
)


def _planted(m, n, rank, rng, noise=0.0):
    a = rng.standard_normal((m, rank)) @ rng.standard_normal((rank, n))
    if noise:
        a = a + noise * rng.standard_normal((m, n))
    return a


class TestSvdViaEvd:
    @pytest.mark.parametrize("method", ["jordan_wielandt", "gram"])
    @pytest.mark.parametrize("m,n", [(40, 40), (60, 30), (33, 21)])
    def test_full_svd(self, rng, method, m, n):
        a = rng.standard_normal((m, n))
        u, s, vt = svd_via_evd(a, method=method, precision="fp64")
        s_ref = np.linalg.svd(a, compute_uv=False)
        np.testing.assert_allclose(s, s_ref, atol=1e-10)
        np.testing.assert_allclose((u * s) @ vt, a, atol=1e-10)
        np.testing.assert_allclose(u.T @ u, np.eye(n), atol=1e-10)
        np.testing.assert_allclose(vt @ vt.T, np.eye(n), atol=1e-10)

    def test_wide_matrix(self, rng):
        a = rng.standard_normal((20, 50))
        u, s, vt = svd_via_evd(a, precision="fp64")
        np.testing.assert_allclose((u * s) @ vt, a, atol=1e-10)
        assert s.shape == (20,)

    def test_singular_values_descending(self, rng):
        _, s, _ = svd_via_evd(rng.standard_normal((30, 20)), precision="fp64")
        assert np.all(np.diff(s) <= 1e-12)

    def test_gram_squares_condition(self, rng):
        # A condition-1e6 matrix: the Gram route loses the small singular
        # values' digits, Jordan-Wielandt keeps them.
        u0, _ = np.linalg.qr(rng.standard_normal((50, 20)))
        v0, _ = np.linalg.qr(rng.standard_normal((20, 20)))
        s_true = np.geomspace(1.0, 1e-6, 20)
        a = (u0 * s_true) @ v0.T
        _, s_jw, _ = svd_via_evd(a, method="jordan_wielandt", precision="fp64")
        rel_jw = abs(s_jw[-1] - s_true[-1]) / s_true[-1]
        assert rel_jw < 1e-4

    def test_tc_precision_level(self, rng):
        a = rng.standard_normal((48, 24))
        _, s, _ = svd_via_evd(a, precision="fp16_tc", b=4)
        s_ref = np.linalg.svd(a, compute_uv=False)
        assert float(np.abs(s - s_ref).max()) / s_ref[0] < 5e-3

    def test_bad_method(self, rng):
        with pytest.raises(ConfigurationError):
            svd_via_evd(rng.standard_normal((8, 4)), method="bidiag")

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            svd_via_evd(np.zeros((0, 3)))


class TestRandomizedSvd:
    def test_exact_on_planted_rank(self, rng):
        a = _planted(80, 60, 10, rng)
        u, s, vt = randomized_svd(a, 10, rng=rng)
        assert np.linalg.norm(a - (u * s) @ vt) / np.linalg.norm(a) < 1e-10

    def test_near_optimal_with_noise(self, rng):
        a = _planted(100, 70, 8, rng, noise=1e-3)
        u, s, vt = randomized_svd(a, 8, power_iterations=2, rng=rng)
        err = np.linalg.norm(a - (u * s) @ vt)
        s_ref = np.linalg.svd(a, compute_uv=False)
        optimal = np.sqrt(np.sum(s_ref[8:] ** 2))
        assert err < 2 * optimal

    def test_shapes(self, rng):
        u, s, vt = randomized_svd(rng.standard_normal((30, 20)), 5, rng=rng)
        assert u.shape == (30, 5) and s.shape == (5,) and vt.shape == (5, 20)

    def test_orthonormal_factors(self, rng):
        u, _, vt = randomized_svd(_planted(40, 30, 6, rng), 6, rng=rng)
        np.testing.assert_allclose(u.T @ u, np.eye(6), atol=1e-10)
        np.testing.assert_allclose(vt @ vt.T, np.eye(6), atol=1e-10)

    def test_rank_validation(self, rng):
        with pytest.raises(ShapeError):
            randomized_svd(rng.standard_normal((10, 8)), 0)
        with pytest.raises(ShapeError):
            randomized_svd(rng.standard_normal((10, 8)), 9)

    def test_engine_string(self, rng):
        a = _planted(40, 30, 5, rng)
        u, s, vt = randomized_svd(a, 5, engine="fp32", rng=rng)
        assert np.linalg.norm(a - (u * s) @ vt) / np.linalg.norm(a) < 1e-4


class TestRandomizedEig:
    def test_top_eigenpairs_decaying(self, rng):
        a, lam_true = generate_symmetric(100, distribution="geo", cond=1e6,
                                         signs="positive", rng=rng)
        lam, v = randomized_eig(a, 5, power_iterations=4, rng=rng)
        top = np.sort(lam_true)[::-1][:5]
        assert np.abs(np.sort(lam)[::-1] - top).max() / top[0] < 1e-4
        np.testing.assert_allclose(v.T @ v, np.eye(5), atol=1e-8)

    def test_magnitude_ordering_with_negatives(self, rng):
        a, lam_true = generate_symmetric(60, distribution="arith", cond=100, rng=rng)
        lam, _ = randomized_eig(a, 60, oversample=0, power_iterations=1, rng=rng)
        # Full-rank sketch: exact spectrum (any order by |.|).
        np.testing.assert_allclose(np.sort(lam), np.sort(lam_true), atol=1e-8)

    def test_rejects_asymmetric(self, rng):
        from repro.errors import NotSymmetricError

        with pytest.raises(NotSymmetricError):
            randomized_eig(rng.standard_normal((10, 10)), 3)


class TestBlockLanczos:
    def test_beats_subspace_iteration_same_products(self, rng):
        # Ref [40]'s claim: at equal A-product counts, block Lanczos is at
        # least as accurate as subspace iteration on a decaying spectrum.
        a, lam_true = generate_symmetric(120, distribution="geo", cond=1e6,
                                         signs="positive", rng=rng)
        top = np.sort(lam_true)[::-1][:6]
        lam_si, _ = randomized_eig(a, 6, oversample=6, power_iterations=3, rng=rng)
        lam_bl, _ = block_lanczos_eig(a, 6, block_size=12, n_blocks=4, rng=rng)
        err_si = np.abs(np.sort(lam_si)[::-1] - top).max()
        err_bl = np.abs(np.sort(lam_bl)[::-1] - top).max()
        assert err_bl <= 5 * err_si  # never dramatically worse...
        assert err_bl / top[0] < 1e-5  # ...and accurate in absolute terms

    def test_exact_on_planted_rank(self, rng):
        q0, _ = np.linalg.qr(rng.standard_normal((80, 6)))
        a = (q0 * np.array([10, 8, 6, 4, 2, 1.0])) @ q0.T
        lam, v = block_lanczos_eig(a, 6, block_size=6, n_blocks=3, rng=rng)
        np.testing.assert_allclose(np.sort(lam)[::-1], [10, 8, 6, 4, 2, 1], atol=1e-8)
        np.testing.assert_allclose(a @ v, v * lam, atol=1e-7)

    def test_basis_exhaustion_guard(self, rng):
        a = np.eye(10)  # Krylov space collapses after one block
        with pytest.raises(ConfigurationError):
            block_lanczos_eig(a, 8, block_size=2, n_blocks=5, rng=rng)

    def test_bad_blocks(self, rng):
        a, _ = generate_symmetric(16, rng=rng)
        with pytest.raises(ConfigurationError):
            block_lanczos_eig(a, 4, n_blocks=0, rng=rng)


class TestLowRankApprox:
    def test_randomized_path(self, rng):
        a = _planted(50, 40, 7, rng)
        approx = low_rank_approx(a, 7, rng=rng)
        assert np.linalg.norm(a - approx) / np.linalg.norm(a) < 1e-9

    def test_evd_path(self, rng):
        a, lam = generate_symmetric(48, distribution="geo", cond=1e4,
                                    signs="positive", rng=rng)
        approx = low_rank_approx(a, 10, method="evd", b=4)
        s_ref = np.sort(np.abs(lam))[::-1]
        optimal = np.sqrt(np.sum(s_ref[10:] ** 2))
        assert np.linalg.norm(a - approx, "fro") < 3 * optimal + 1e-6

    def test_bad_method(self, rng):
        with pytest.raises(ConfigurationError):
            low_rank_approx(rng.standard_normal((8, 8)), 2, method="cur")


class TestBidiagonalize:
    from repro.svd import bidiagonalize as _bidiag  # noqa: F401 (import check)

    @pytest.mark.parametrize("m,n", [(30, 20), (15, 15), (8, 3), (5, 1)])
    def test_factorization(self, rng, m, n):
        from repro.svd import bidiagonalize

        a = rng.standard_normal((m, n))
        u, d, e, v = bidiagonalize(a)
        b = np.zeros((m, n))
        b[np.arange(n), np.arange(n)] = d
        if n > 1:
            b[np.arange(n - 1), np.arange(1, n)] = e
        np.testing.assert_allclose(u @ b @ v.T, a, atol=1e-12)
        np.testing.assert_allclose(u.T @ u, np.eye(m), atol=1e-13)
        np.testing.assert_allclose(v.T @ v, np.eye(n), atol=1e-13)

    def test_no_uv(self, rng):
        from repro.svd import bidiagonalize

        u, d, e, v = bidiagonalize(rng.standard_normal((12, 8)), want_uv=False)
        assert u is None and v is None
        assert d.shape == (8,) and e.shape == (7,)

    def test_singular_values_preserved(self, rng):
        from repro.svd import bidiagonalize

        a = rng.standard_normal((20, 10))
        _, d, e, _ = bidiagonalize(a, want_uv=False)
        b = np.diag(d) + np.diag(e, 1)
        np.testing.assert_allclose(
            np.linalg.svd(b, compute_uv=False),
            np.linalg.svd(a, compute_uv=False),
            atol=1e-11,
        )

    def test_rejects_wide(self, rng):
        from repro.svd import bidiagonalize

        with pytest.raises(ShapeError):
            bidiagonalize(rng.standard_normal((3, 6)))


class TestSvdDirect:
    @pytest.mark.parametrize("m,n", [(30, 20), (20, 30), (25, 25), (10, 1), (1, 7)])
    def test_matches_lapack(self, rng, m, n):
        from repro.svd import svd_direct

        a = rng.standard_normal((m, n))
        u, s, vt = svd_direct(a)
        k = min(m, n)
        np.testing.assert_allclose(s, np.linalg.svd(a, compute_uv=False), atol=1e-11)
        np.testing.assert_allclose((u * s) @ vt, a, atol=1e-11)
        np.testing.assert_allclose(u.T @ u, np.eye(k), atol=1e-12)
        np.testing.assert_allclose(vt @ vt.T, np.eye(k), atol=1e-12)

    def test_rank_deficient(self, rng):
        from repro.svd import svd_direct

        a = rng.standard_normal((20, 5)) @ rng.standard_normal((5, 12))
        u, s, vt = svd_direct(a)
        assert np.sum(s > 1e-10) == 5
        np.testing.assert_allclose((u * s) @ vt, a, atol=1e-11)
        np.testing.assert_allclose(u.T @ u, np.eye(12), atol=1e-11)

    def test_zero_matrix(self):
        from repro.svd import svd_direct

        u, s, vt = svd_direct(np.zeros((6, 4)))
        np.testing.assert_array_equal(s, 0)
        np.testing.assert_allclose(u.T @ u, np.eye(4), atol=1e-13)

    def test_agrees_with_via_evd(self, rng):
        from repro.svd import svd_direct, svd_via_evd

        a = rng.standard_normal((24, 16))
        _, s1, _ = svd_direct(a)
        _, s2, _ = svd_via_evd(a, precision="fp64")
        np.testing.assert_allclose(s1, s2, atol=1e-10)

    def test_golub_kahan_structure(self, rng):
        # The perfect-shuffle claim itself: the shuffled JW embedding of a
        # bidiagonal matrix is tridiagonal with the interleaved bands.
        n = 6
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        b = np.diag(d) + np.diag(e, 1)
        jw = np.zeros((2 * n, 2 * n))
        jw[:n, n:] = b
        jw[n:, :n] = b.T
        perm = np.empty(2 * n, dtype=int)
        perm[0::2] = np.arange(n, 2 * n)  # v-coordinates first...
        perm[1::2] = np.arange(n)         # ...then u, per module docstring
        t = jw[np.ix_(perm, perm)]
        from repro.la import tridiag_to_dense

        off = np.empty(2 * n - 1)
        off[0::2] = d
        off[1::2] = e
        np.testing.assert_allclose(t, tridiag_to_dense(np.zeros(2 * n), off), atol=0)


def _random_banded(n, bl, bu, rng):
    a = rng.standard_normal((n, n))
    mask = np.zeros((n, n), dtype=bool)
    idx = np.arange(n)
    diff = idx[None, :] - idx[:, None]
    mask[(diff > bu) | (diff < -bl)] = True
    a[mask] = 0.0
    return a


class TestSvdBanded:
    @pytest.mark.parametrize(
        "n,bl,bu",
        [
            (48, 0, 4),    # upper-banded
            (48, 0, 1),    # already bidiagonal
            (32, 0, 31),   # bw >= n-1 (dense upper triangle)
            (49, 0, 5),    # n not a multiple of anything nice
            (48, 3, 0),    # lower-banded: exercises the QR pre-pass
            (48, 4, 4),    # general band
            (3, 1, 1),
            (2, 1, 1),
            (1, 0, 0),
        ],
    )
    def test_factorization(self, rng, n, bl, bu):
        from repro.svd import svd_banded

        a = _random_banded(n, bl, bu, rng)
        u, s, vt = svd_banded(a)
        np.testing.assert_allclose(u @ np.diag(s) @ vt, a, atol=1e-11)
        # Orthogonality 1e-9: the shared Golub–Kahan back end loses a few
        # digits when the spectrum has near-zero singular values (same
        # characteristic as svd_direct).
        np.testing.assert_allclose(u.T @ u, np.eye(n), atol=1e-9)
        np.testing.assert_allclose(vt @ vt.T, np.eye(n), atol=1e-9)
        assert np.all(np.diff(s) <= 1e-12)
        np.testing.assert_allclose(
            s, np.linalg.svd(a, compute_uv=False), atol=1e-10
        )

    def test_band_to_bidiagonal_invariant(self, rng):
        from repro.svd import band_to_bidiagonal

        a = _random_banded(40, 0, 6, rng)
        u, d, e, v = band_to_bidiagonal(a, 6)
        b = np.diag(d) + np.diag(e, 1)
        np.testing.assert_allclose(u @ b @ v.T, a, atol=1e-12)
        np.testing.assert_allclose(u.T @ u, np.eye(40), atol=1e-12)
        np.testing.assert_allclose(v.T @ v, np.eye(40), atol=1e-12)

    def test_band_to_bidiagonal_no_uv(self, rng):
        from repro.svd import band_to_bidiagonal

        a = _random_banded(24, 0, 4, rng)
        u_full, d_full, e_full, _ = band_to_bidiagonal(a, 4)
        u, d, e, v = band_to_bidiagonal(a, 4, want_uv=False)
        assert u is None and v is None
        np.testing.assert_array_equal(d, d_full)
        np.testing.assert_array_equal(e, e_full)

    def test_band_to_bidiagonal_rejects_lower_content(self, rng):
        from repro.svd import band_to_bidiagonal

        with pytest.raises(ShapeError):
            band_to_bidiagonal(_random_banded(16, 2, 2, rng), 3)

    def test_cross_validates_against_svd_via_evd(self, rng):
        from repro.svd import svd_banded

        a = _random_banded(40, 0, 5, rng)
        _, s1, _ = svd_banded(a)
        _, s2, _ = svd_via_evd(a, precision="fp64")
        np.testing.assert_allclose(s1, s2, atol=1e-10)

    def test_validates_declared_bandwidth(self, rng):
        from repro.errors import ValidationError
        from repro.svd import svd_banded

        a = _random_banded(16, 0, 5, rng)
        with pytest.raises(ValidationError) as exc:
            svd_banded(a, 3)
        assert exc.value.field == "bw"
        with pytest.raises(ValidationError):
            svd_banded(a, 0)

    def test_rejects_bad_shapes(self):
        from repro.svd import svd_banded

        with pytest.raises(ShapeError):
            svd_banded(np.zeros((3, 4)))
        with pytest.raises(ShapeError):
            svd_banded(np.zeros((0, 0)))

    def test_engine_tags_and_workspace_reuse(self, rng):
        from repro.gemm import Fp64Engine
        from repro.gemm.symbolic import BULGE_SVD_TAGS
        from repro.perf import Workspace
        from repro.svd import svd_banded

        a = _random_banded(40, 0, 5, rng)
        eng = Fp64Engine(record=True)
        ws = Workspace()
        svd_banded(a, engine=eng, workspace=ws)
        assert BULGE_SVD_TAGS <= {r.tag for r in eng.trace.records}
        before = dict(ws.stats())
        svd_banded(a, workspace=ws)
        after = dict(ws.stats())
        assert after["misses"] == before["misses"]
