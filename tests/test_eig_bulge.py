"""Tests for bulge chasing (band → tridiagonal) and direct tridiagonalization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.eig import bulge_chase, householder_tridiagonalize
from repro.la import bandwidth_of, extract_band, tridiag_to_dense
from tests.conftest import random_symmetric


class TestBulgeChase:
    @pytest.mark.parametrize(
        "n,b", [(8, 2), (24, 3), (40, 5), (64, 8), (33, 7), (12, 11), (30, 1), (5, 4), (3, 2)]
    )
    def test_similarity_and_orthogonality(self, rng, n, b):
        ab = extract_band(random_symmetric(n, rng), b)
        d, e, q = bulge_chase(ab, b, want_q=True)
        t = tridiag_to_dense(d, e)
        np.testing.assert_allclose(q @ t @ q.T, ab, atol=1e-12)
        np.testing.assert_allclose(q.T @ q, np.eye(n), atol=1e-12)

    def test_eigenvalues_preserved(self, rng):
        ab = extract_band(random_symmetric(50, rng), 6)
        d, e, _ = bulge_chase(ab, 6, want_q=False)
        np.testing.assert_allclose(
            np.linalg.eigvalsh(tridiag_to_dense(d, e)),
            np.linalg.eigvalsh(ab),
            atol=1e-11,
        )

    def test_bandwidth_one_passthrough(self, rng):
        t_in = extract_band(random_symmetric(12, rng), 1)
        d, e, q = bulge_chase(t_in, 1)
        np.testing.assert_array_equal(d, np.diagonal(t_in))
        np.testing.assert_array_equal(e, np.diagonal(t_in, -1))
        np.testing.assert_array_equal(q, np.eye(12))

    def test_no_q(self, rng):
        ab = extract_band(random_symmetric(16, rng), 3)
        _, _, q = bulge_chase(ab, 3, want_q=False)
        assert q is None

    def test_already_tridiagonal_band(self, rng):
        # A tridiagonal matrix declared with larger bandwidth must survive.
        t_in = extract_band(random_symmetric(20, rng), 1)
        d, e, q = bulge_chase(t_in, 5, want_q=True)
        np.testing.assert_allclose(
            q @ tridiag_to_dense(d, e) @ q.T, t_in, atol=1e-12
        )

    def test_rejects_bad_bandwidth(self, rng):
        with pytest.raises(ShapeError):
            bulge_chase(random_symmetric(8, rng), 0)

    def test_diagonal_input(self):
        a = np.diag([3.0, 1.0, 2.0])
        d, e, _ = bulge_chase(a, 2)
        np.testing.assert_array_equal(np.sort(d), [1, 2, 3])
        np.testing.assert_allclose(e, 0, atol=1e-15)

    def test_two_by_two(self, rng):
        a = random_symmetric(2, rng)
        d, e, q = bulge_chase(a, 1)
        np.testing.assert_allclose(q @ tridiag_to_dense(d, e) @ q.T, a, atol=1e-14)

    def test_float32_input(self, rng):
        ab = extract_band(random_symmetric(24, rng), 4).astype(np.float32)
        d, e, q = bulge_chase(ab, 4)
        assert d.dtype == np.float32
        np.testing.assert_allclose(
            q @ tridiag_to_dense(d, e) @ q.T, ab, atol=1e-4
        )


class TestHouseholderTridiagonalize:
    @pytest.mark.parametrize("n", [2, 3, 8, 33, 64])
    def test_similarity(self, rng, n):
        a = random_symmetric(n, rng)
        d, e, q = householder_tridiagonalize(a)
        t = tridiag_to_dense(d, e)
        np.testing.assert_allclose(q @ t @ q.T, a, atol=1e-12)
        np.testing.assert_allclose(q.T @ q, np.eye(n), atol=1e-13)

    def test_result_is_tridiagonal_similar(self, rng):
        a = random_symmetric(20, rng)
        d, e, _ = householder_tridiagonalize(a, want_q=False)
        np.testing.assert_allclose(
            np.sort(np.linalg.eigvalsh(tridiag_to_dense(d, e))),
            np.sort(np.linalg.eigvalsh(a)),
            atol=1e-11,
        )

    def test_no_q(self, rng):
        _, _, q = householder_tridiagonalize(random_symmetric(10, rng), want_q=False)
        assert q is None

    def test_matches_bulge_chase_eigenvalues(self, rng):
        # One-stage and two-stage routes agree on the spectrum.
        a = random_symmetric(32, rng)
        d1, e1, _ = householder_tridiagonalize(a, want_q=False)
        from repro.gemm import Fp64Engine
        from repro.sbr import sbr_wy

        res = sbr_wy(a, 4, 8, engine=Fp64Engine(), want_q=False)
        d2, e2, _ = bulge_chase(res.band, 4, want_q=False)
        np.testing.assert_allclose(
            np.linalg.eigvalsh(tridiag_to_dense(d1, e1)),
            np.linalg.eigvalsh(tridiag_to_dense(d2, e2)),
            atol=1e-10,
        )
