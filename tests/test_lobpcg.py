"""Tests for the LOBPCG iterative eigensolver (paper §7 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig import lobpcg
from repro.errors import ConfigurationError, ConvergenceError, ShapeError
from repro.gemm import Fp64Engine, SgemmEngine
from repro.matrices import generate_symmetric
from tests.conftest import random_symmetric


class TestLobpcg:
    def test_largest_eigenpairs(self, rng):
        a, lam_true = generate_symmetric(160, distribution="geo", cond=1e4,
                                         signs="positive", rng=rng)
        lam, x, its = lobpcg(a, 5, largest=True, rng=rng)
        np.testing.assert_allclose(lam, lam_true[-5:], atol=1e-8)
        np.testing.assert_allclose(x.T @ x, np.eye(5), atol=1e-10)
        assert its < 100

    def test_smallest_eigenpairs_arith(self, rng):
        a, lam_true = generate_symmetric(120, distribution="arith", cond=100,
                                         signs="positive", rng=rng)
        lam, x, _ = lobpcg(a, 4, rng=rng, tol=1e-7, max_iter=400)
        np.testing.assert_allclose(lam, lam_true[:4], atol=1e-7)
        resid = np.abs(a @ x - x * lam).max()
        assert resid < 1e-5

    def test_preconditioner_accelerates(self, rng):
        import networkx as nx

        g = nx.grid_2d_graph(10, 10)
        l_mat = nx.laplacian_matrix(g).toarray().astype(float) + 0.1 * np.eye(100)
        dinv = 1.0 / np.diagonal(l_mat)
        _, _, its_pc = lobpcg(
            l_mat, 3, preconditioner=lambda r: r * dinv[:, None],
            rng=rng, max_iter=800, tol=1e-6,
        )
        _, _, its_plain = lobpcg(l_mat, 3, rng=rng, max_iter=800, tol=1e-6)
        assert its_pc <= its_plain * 1.5  # never much worse, usually better

    def test_initial_guess_speeds_convergence(self, rng):
        a, _ = generate_symmetric(100, distribution="arith", cond=50,
                                  signs="positive", rng=rng)
        lam_ref, v_ref = np.linalg.eigh(a)
        x0 = v_ref[:, :3] + 1e-4 * rng.standard_normal((100, 3))
        lam, _, its_warm = lobpcg(a, 3, x0=x0, rng=rng, tol=1e-8, max_iter=500)
        _, _, its_cold = lobpcg(a, 3, rng=rng, tol=1e-8, max_iter=500)
        assert its_warm <= its_cold
        np.testing.assert_allclose(lam, lam_ref[:3], atol=1e-9)

    def test_matches_dense_solver(self, rng):
        a = random_symmetric(90, rng)
        lam, x, _ = lobpcg(a, 4, largest=True, rng=rng, tol=1e-8, max_iter=500)
        ref = np.linalg.eigvalsh(a)[-4:]
        np.testing.assert_allclose(lam, ref, atol=1e-7)

    def test_engine_routing_and_tags(self, rng):
        a, _ = generate_symmetric(64, distribution="arith", cond=10,
                                  signs="positive", rng=rng)
        eng = Fp64Engine(record=True)
        lobpcg(a, 3, largest=True, engine=eng, rng=rng, tol=1e-7)
        tags = eng.trace.tags()
        assert tags["lobpcg_ax"] > 0 and tags["lobpcg_project"] > 0

    def test_fp32_engine_reaches_fp32_tolerance(self, rng):
        a, lam_true = generate_symmetric(96, distribution="arith", cond=10,
                                         signs="positive", rng=rng)
        lam, _, _ = lobpcg(a, 3, largest=True, engine=SgemmEngine(), rng=rng,
                           tol=1e-5, max_iter=300)
        np.testing.assert_allclose(lam, lam_true[-3:], atol=1e-3)

    def test_convergence_error(self, rng):
        a, _ = generate_symmetric(120, distribution="geo", cond=1e6,
                                  signs="positive", rng=rng)
        with pytest.raises(ConvergenceError):
            lobpcg(a, 3, rng=rng, tol=1e-14, max_iter=3)

    def test_k_validation(self, rng):
        a = random_symmetric(12, rng)
        with pytest.raises(ShapeError):
            lobpcg(a, 0)
        with pytest.raises(ShapeError):
            lobpcg(a, 5)  # 3k > n

    def test_x0_shape_validation(self, rng):
        a = random_symmetric(30, rng)
        with pytest.raises(ShapeError):
            lobpcg(a, 3, x0=np.ones((30, 2)))

    def test_max_iter_validation(self, rng):
        with pytest.raises(ConfigurationError):
            lobpcg(random_symmetric(30, rng), 3, max_iter=0)
