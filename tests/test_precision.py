"""Tests for Tensor-Core precision emulation (rounding, TC-GEMM, EC-TCGEMM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.precision import (
    BF16_EPS,
    FP16_EPS,
    FP32_EPS,
    TF32_EPS,
    Precision,
    ec_tcgemm,
    round_bf16,
    round_fp16,
    round_tf32,
    round_to_format,
    split_fp16,
    tcgemm,
)


class TestRounding:
    def test_fp16_idempotent(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        once = round_fp16(x)
        np.testing.assert_array_equal(once, round_fp16(once))

    def test_tf32_idempotent(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        once = round_tf32(x)
        np.testing.assert_array_equal(once, round_tf32(once))

    def test_bf16_idempotent(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        once = round_bf16(x)
        np.testing.assert_array_equal(once, round_bf16(once))

    @pytest.mark.parametrize(
        "fn,eps",
        [(round_fp16, FP16_EPS), (round_tf32, TF32_EPS), (round_bf16, BF16_EPS)],
    )
    def test_relative_error_bounded(self, rng, fn, eps):
        # Restrict to each format's *normalized* range: below ~2^-14 FP16
        # goes subnormal and the relative bound intentionally degrades.
        x = rng.standard_normal(10000).astype(np.float32)
        x = x[np.abs(x) > 2.0**-10]
        rel = np.abs(fn(x) - x) / np.abs(x)
        assert float(rel.max()) <= eps

    def test_fp16_matches_numpy_float16(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        np.testing.assert_array_equal(round_fp16(x), x.astype(np.float16).astype(np.float32))

    def test_tf32_keeps_10_mantissa_bits(self):
        # 1 + 2^-10 is exactly representable in TF32; 1 + 2^-11 rounds to
        # even (down to 1.0).
        assert round_tf32(np.float32(1 + 2.0**-10)) == np.float32(1 + 2.0**-10)
        assert round_tf32(np.float32(1 + 2.0**-11)) == np.float32(1.0)

    def test_bf16_keeps_7_mantissa_bits(self):
        assert round_bf16(np.float32(1 + 2.0**-7)) == np.float32(1 + 2.0**-7)
        assert round_bf16(np.float32(1 + 2.0**-8)) == np.float32(1.0)

    def test_tf32_round_to_nearest_even(self):
        # Halfway case 1 + 3*2^-11 rounds up to 1 + 2^-10*2 (even mantissa).
        val = np.float32(1 + 3 * 2.0**-11)
        assert round_tf32(val) == np.float32(1 + 2 * 2.0**-10)

    def test_tf32_preserves_fp32_exponent_range(self):
        # 1e-30 underflows in FP16 but not TF32.
        small = np.float32(1e-30)
        assert round_fp16(small) == 0.0
        assert round_tf32(small) != 0.0

    def test_rounding_preserves_sign_and_zero(self):
        x = np.array([0.0, -0.0, 1.5, -1.5], dtype=np.float32)
        for fn in (round_fp16, round_tf32, round_bf16):
            out = fn(x)
            assert out[0] == 0 and out[1] == 0
            assert out[2] > 0 and out[3] < 0

    def test_nan_preserved(self):
        x = np.array([np.nan, 1.0], dtype=np.float32)
        for fn in (round_fp16, round_tf32, round_bf16):
            out = fn(x)
            assert np.isnan(out[0]) and out[1] == 1.0

    def test_round_to_format_dispatch(self, rng):
        x = rng.standard_normal(10).astype(np.float32)
        np.testing.assert_array_equal(round_to_format(x, "fp16"), round_fp16(x))
        np.testing.assert_array_equal(round_to_format(x, "tf32"), round_tf32(x))
        np.testing.assert_array_equal(round_to_format(x, "fp32"), x)

    def test_round_to_format_unknown(self):
        with pytest.raises(ValueError, match="unknown operand format"):
            round_to_format(np.zeros(3), "fp8")

    def test_returns_float32(self, rng):
        x = rng.standard_normal(10)
        for fn in (round_fp16, round_tf32, round_bf16):
            assert fn(x).dtype == np.float32


class TestSplitFp16:
    def test_reconstruction_accuracy(self, rng):
        x = rng.standard_normal(5000).astype(np.float32)
        hi, lo = split_fp16(x)
        recon = hi + lo / np.float32(2.0**11)
        rel = np.abs(recon - x) / np.maximum(np.abs(x), 1e-30)
        # Two-term split captures ~22 bits.
        assert float(rel.max()) < 2.0**-20

    def test_hi_is_fp16(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        hi, lo = split_fp16(x)
        np.testing.assert_array_equal(hi, round_fp16(hi))
        np.testing.assert_array_equal(lo, round_fp16(lo))

    def test_scaling_avoids_underflow(self):
        # Residuals of O(1) values are ~2^-11; unscaled FP16 rounding of the
        # residual would lose bits near the subnormal threshold for small x.
        x = np.full(10, 0.001, dtype=np.float32)
        hi, lo = split_fp16(x)
        recon = hi + lo / np.float32(2.0**11)
        assert float(np.abs(recon - x).max() / 0.001) < 2.0**-20


class TestTcgemm:
    def test_matches_fp16_reference(self, rng):
        a = rng.standard_normal((20, 30)).astype(np.float32)
        b = rng.standard_normal((30, 10)).astype(np.float32)
        expected = round_fp16(a) @ round_fp16(b)
        np.testing.assert_allclose(tcgemm(a, b), expected, rtol=1e-6)

    def test_error_level_is_fp16(self, rng):
        a = rng.standard_normal((64, 64)).astype(np.float32)
        b = rng.standard_normal((64, 64)).astype(np.float32)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        err = np.abs(tcgemm(a, b) - exact).max() / np.abs(exact).max()
        assert 1e-5 < err < 1e-2  # fp16-grade, not fp32-grade

    def test_fp32_format_is_plain_matmul(self, rng):
        a = rng.standard_normal((8, 8)).astype(np.float32)
        b = rng.standard_normal((8, 8)).astype(np.float32)
        np.testing.assert_allclose(tcgemm(a, b, operand_format="fp32"), a @ b, rtol=1e-6)

    def test_chunked_accumulation_close_to_unchunked(self, rng):
        a = rng.standard_normal((16, 128)).astype(np.float32)
        b = rng.standard_normal((128, 16)).astype(np.float32)
        full = tcgemm(a, b)
        chunked = tcgemm(a, b, chunk_k=32)
        np.testing.assert_allclose(chunked, full, rtol=1e-4, atol=1e-4)

    def test_chunk_larger_than_k(self, rng):
        a = rng.standard_normal((4, 8)).astype(np.float32)
        b = rng.standard_normal((8, 4)).astype(np.float32)
        np.testing.assert_array_equal(tcgemm(a, b, chunk_k=100), tcgemm(a, b))

    def test_result_dtype_float32(self, rng):
        out = tcgemm(rng.standard_normal((3, 4)), rng.standard_normal((4, 5)))
        assert out.dtype == np.float32

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ShapeError):
            tcgemm(np.zeros((3, 4)), np.zeros((5, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            tcgemm(np.zeros(3), np.zeros((3, 2)))

    def test_rejects_bad_chunk(self, rng):
        with pytest.raises(ValueError):
            tcgemm(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)), chunk_k=0)

    @pytest.mark.parametrize("fmt,eps", [("bf16", BF16_EPS), ("tf32", TF32_EPS)])
    def test_other_formats_error_levels(self, rng, fmt, eps):
        a = rng.standard_normal((64, 64)).astype(np.float32)
        b = rng.standard_normal((64, 64)).astype(np.float32)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        err = np.abs(tcgemm(a, b, operand_format=fmt) - exact).max() / np.abs(exact).max()
        assert err < 100 * eps * np.sqrt(64)


class TestEcTcgemm:
    def test_recovers_fp32_accuracy(self, rng):
        a = rng.standard_normal((64, 96)).astype(np.float32)
        b = rng.standard_normal((96, 48)).astype(np.float32)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        scale = np.abs(exact).max()
        err_ec = np.abs(ec_tcgemm(a, b) - exact).max() / scale
        err_tc = np.abs(tcgemm(a, b) - exact).max() / scale
        assert err_ec < 1e-6          # fp32-grade
        assert err_tc > 50 * err_ec   # and much better than plain TC

    def test_comparable_to_sgemm(self, rng):
        a = rng.standard_normal((32, 32)).astype(np.float32)
        b = rng.standard_normal((32, 32)).astype(np.float32)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        err_ec = np.abs(ec_tcgemm(a, b) - exact).max()
        err_sg = np.abs((a @ b) - exact).max()
        assert err_ec < 16 * max(err_sg, FP32_EPS)

    def test_shape_checks(self):
        with pytest.raises(ShapeError):
            ec_tcgemm(np.zeros((2, 3)), np.zeros((4, 2)))

    def test_wide_dynamic_range(self, rng):
        # Entries spanning many orders of magnitude: the scaled residual
        # split must not underflow away the small entries' corrections.
        a = (rng.standard_normal((32, 32)) * 10.0 ** rng.uniform(-3, 3, (32, 32))).astype(np.float32)
        b = rng.standard_normal((32, 32)).astype(np.float32)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        err = np.abs(ec_tcgemm(a, b) - exact).max() / np.abs(exact).max()
        assert err < 1e-5


class TestPrecisionEnum:
    def test_from_name_roundtrip(self):
        for mode in Precision:
            assert Precision.from_name(mode.value) is mode
            assert Precision.from_name(mode) is mode

    def test_from_name_case_insensitive(self):
        assert Precision.from_name("FP16_TC") is Precision.FP16_TC

    def test_from_name_unknown(self):
        with pytest.raises(ValueError, match="unknown precision"):
            Precision.from_name("fp8")

    def test_tensor_core_flags(self):
        assert Precision.FP16_TC.uses_tensor_core
        assert Precision.FP16_EC_TC.uses_tensor_core
        assert not Precision.FP32.uses_tensor_core
        assert not Precision.FP64.uses_tensor_core

    def test_error_corrected_flag(self):
        assert Precision.FP16_EC_TC.is_error_corrected
        assert not Precision.FP16_TC.is_error_corrected

    def test_machine_eps_ordering(self):
        assert Precision.FP64.machine_eps < Precision.FP32.machine_eps
        assert Precision.FP32.machine_eps < Precision.FP16_TC.machine_eps
        assert Precision.FP16_TC.machine_eps < Precision.BF16_TC.machine_eps

    def test_ec_eps_is_fp32(self):
        assert Precision.FP16_EC_TC.machine_eps == Precision.FP32.machine_eps

    def test_working_dtype(self):
        assert Precision.FP64.working_dtype == np.float64
        for mode in (Precision.FP32, Precision.FP16_TC, Precision.FP16_EC_TC):
            assert mode.working_dtype == np.float32

    def test_round_operand_matches_format(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        np.testing.assert_array_equal(Precision.FP16_TC.round_operand(x), round_fp16(x))
        np.testing.assert_array_equal(Precision.TF32_TC.round_operand(x), round_tf32(x))
