"""Tests for the telemetry subsystem: spans, manifests, reports, CLI."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import obs, syevd_2stage
from repro.gemm import GemmTrace, SgemmEngine
from repro.obs.__main__ import main as obs_main
from repro.obs.manifest import SCHEMA_VERSION
from repro.obs.spans import NULL_SPAN


class TestSpans:
    def test_disabled_is_noop_singleton(self):
        assert not obs.is_enabled()
        assert obs.span("x") is NULL_SPAN
        assert obs.span("y", meta=1) is NULL_SPAN
        with obs.span("z") as sp:
            sp.count("n", 3)  # swallowed
        assert obs.active_collector() is None

    def test_disabled_counter_and_gemm_event_noop(self):
        obs.counter("anything", 5)
        obs.gemm_event(2, 2, 2, tag="t", engine="e", op="gemm", seconds=0.1)
        assert obs.active_collector() is None

    def test_collect_activates_and_restores(self):
        assert not obs.is_enabled()
        with obs.collect() as session:
            assert obs.is_enabled()
            assert obs.active_collector() is session
        assert not obs.is_enabled()

    def test_nesting_paths_and_depths(self):
        with obs.collect() as session:
            with obs.span("outer"):
                with obs.span("inner"):
                    with obs.span("leaf"):
                        pass
                with obs.span("inner2"):
                    pass
        paths = [s.path for s in session.spans]
        # Spans finish innermost-first.
        assert paths == ["outer/inner/leaf", "outer/inner", "outer/inner2", "outer"]
        assert [s.depth for s in session.spans] == [2, 1, 1, 0]
        assert session.roots()[0].name == "outer"

    def test_durations_nest(self):
        with obs.collect() as session:
            with obs.span("outer"):
                with obs.span("inner"):
                    time.sleep(0.01)
        inner = session.by_path("outer/inner")[0]
        outer = session.by_path("outer")[0]
        assert inner.duration >= 0.009
        assert outer.duration >= inner.duration

    def test_counters_and_meta(self):
        with obs.collect() as session:
            with obs.span("work", kind="test") as sp:
                sp.count("items", 2)
                sp.count("items", 3)
                obs.counter("seen")
        span = session.spans[0]
        assert span.counters == {"items": 5, "seen": 1}
        assert span.meta == {"kind": "test"}

    def test_counter_outside_span_is_dropped(self):
        with obs.collect() as session:
            obs.counter("orphan")
        assert session.spans == []

    def test_nested_collect_shadows_outer(self):
        with obs.collect() as outer_session:
            with obs.span("outer_only"):
                pass
            with obs.collect() as inner_session:
                with obs.span("inner_only"):
                    pass
            assert obs.active_collector() is outer_session
        assert [s.name for s in outer_session.spans] == ["outer_only"]
        assert [s.name for s in inner_session.spans] == ["inner_only"]

    def test_exception_still_finishes_span(self):
        with obs.collect() as session:
            with pytest.raises(RuntimeError):
                with obs.span("failing"):
                    raise RuntimeError("boom")
        assert [s.name for s in session.spans] == ["failing"]

    def test_span_roundtrips_through_dict(self):
        with obs.collect() as session:
            with obs.span("a", n=4) as sp:
                sp.count("c", 1)
        original = session.spans[0]
        assert obs.Span.from_dict(original.to_dict()) == original


class TestGemmEvents:
    def test_engine_reports_events_with_span_attribution(self, rng):
        eng = SgemmEngine(record=True)
        a = rng.standard_normal((8, 4)).astype(np.float32)
        b = rng.standard_normal((4, 6)).astype(np.float32)
        with obs.collect() as session:
            with obs.span("phase"):
                eng.gemm(a, b, tag="t1")
        assert len(session.gemm_events) == 1
        ev = session.gemm_events[0]
        assert (ev.m, ev.n, ev.k) == (8, 6, 4)
        assert ev.tag == "t1" and ev.engine == "sgemm" and ev.op == "gemm"
        assert ev.span_path == "phase"
        assert ev.seconds > 0
        assert ev.flops == eng.trace.total_flops

    def test_syr2k_event_matches_trace_record(self, rng):
        eng = SgemmEngine(record=True)
        y = rng.standard_normal((6, 3)).astype(np.float32)
        z = rng.standard_normal((6, 3)).astype(np.float32)
        with obs.collect() as session:
            eng.syr2k(y, z, tag="s")
        ev = session.gemm_events[0]
        assert ev.op == "syr2k"
        assert ev.span_path == ""  # no enclosing span
        assert ev.flops == eng.trace[0].flops

    def test_no_events_when_disabled(self, rng):
        eng = SgemmEngine()
        eng.gemm(rng.standard_normal((3, 3)), rng.standard_normal((3, 3)))
        # Nothing to assert beyond "no crash": there is no collector.
        assert obs.active_collector() is None

    def test_gemm_summary_aggregates(self, rng):
        eng = SgemmEngine()
        a = rng.standard_normal((4, 4)).astype(np.float32)
        with obs.collect() as session:
            eng.gemm(a, a, tag="x")
            eng.gemm(a, a, tag="x")
            eng.gemm(a, a, tag="y")
        summary = session.gemm_summary()
        assert summary["calls"] == 3
        assert summary["flops"] == 3 * 2 * 4 * 4 * 4
        assert summary["by_tag"]["x"]["calls"] == 2
        assert summary["by_engine"] == {"sgemm": 3}


class TestManifest:
    def _session(self):
        with obs.collect() as session:
            with obs.span("root", n=4):
                with obs.span("child") as sp:
                    sp.count("c", 2)
        return session

    def test_write_and_load_roundtrip(self, tmp_path):
        session = self._session()
        tr = GemmTrace()
        tr.record(2, 3, 4, tag="t", engine="sgemm")
        path = obs.write_manifest(
            session,
            str(tmp_path / "m.jsonl"),
            label="unit",
            precision="fp32",
            matrix={"n": 4},
            config={"b": 2},
            trace=tr,
            accuracy={"probe": 1.5e-7},
        )
        man = obs.load_manifest(path)
        assert man.label == "unit"
        assert man.meta["precision"] == "fp32"
        assert man.meta["matrix"] == {"n": 4}
        assert man.meta["config"] == {"b": 2}
        assert [s.path for s in man.spans] == ["root/child", "root"]
        assert man.spans[0].counters == {"c": 2}
        assert man.accuracy == {"probe": 1.5e-7}
        assert GemmTrace.from_dict(man.trace).records == tr.records

    def test_default_path_under_run_dir(self, tmp_path):
        session = self._session()
        path = obs.write_manifest(session, run_dir=str(tmp_path / "runs"), label="x")
        assert path.startswith(str(tmp_path / "runs"))
        assert path.endswith(".jsonl")
        assert obs.load_manifest(path).label == "x"

    def test_phase_paths_single_root(self, tmp_path):
        session = self._session()
        man = obs.load_manifest(obs.write_manifest(session, str(tmp_path / "m.jsonl")))
        assert man.phase_paths() == ["root/child"]
        assert man.total_wall == pytest.approx(man.spans[-1].duration)

    def test_phase_paths_multiple_roots(self, tmp_path):
        with obs.collect() as session:
            with obs.span("exp.a"):
                pass
            with obs.span("exp.b"):
                pass
        path = obs.write_manifest(session, str(tmp_path / "m.jsonl"))
        man = obs.load_manifest(path)
        assert man.phase_paths() == ["exp.a", "exp.b"]
        assert man.coverage() == pytest.approx(1.0)

    def test_events_none_omits_gemm_lines(self, tmp_path, rng):
        eng = SgemmEngine()
        a = rng.standard_normal((4, 4)).astype(np.float32)
        with obs.collect() as session:
            with obs.span("p"):
                eng.gemm(a, a, tag="t")
        path = obs.write_manifest(session, str(tmp_path / "m.jsonl"), events="none")
        man = obs.load_manifest(path)
        assert man.gemm_events == []
        assert man.gemm_summary["calls"] == 1

    def test_invalid_events_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            obs.write_manifest(self._session(), str(tmp_path / "m.jsonl"), events="bogus")

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps({"kind": "meta", "schema": SCHEMA_VERSION + 1}) + "\n")
        with pytest.raises(ValueError, match="newer"):
            obs.load_manifest(str(path))

    def test_unknown_kind_skipped(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": 1, "label": "ok", "wall": 0.5}) + "\n"
            + json.dumps({"kind": "mystery", "payload": 1}) + "\n"
        )
        man = obs.load_manifest(str(path))
        assert man.label == "ok"
        assert man.total_wall == 0.5


class TestReport:
    def _manifest(self, tmp_path, name, slow=0.0):
        with obs.collect() as session:
            with obs.span("run"):
                with obs.span("fast"):
                    time.sleep(0.002)
                with obs.span("slow"):
                    time.sleep(0.002 + slow)
        return obs.write_manifest(session, str(tmp_path / name), label=name)

    def test_render_report_contains_phases(self, tmp_path):
        path = self._manifest(tmp_path, "a.jsonl")
        text = obs.render_report(path)
        assert "run/fast" in text and "run/slow" in text
        assert "phase coverage" in text
        assert "(untracked)" in text

    def test_compare_flags_regression(self, tmp_path):
        base = self._manifest(tmp_path, "base.jsonl")
        cand = self._manifest(tmp_path, "cand.jsonl", slow=0.02)
        joined = {e["phase"]: e for e in obs.compare_phases(base, cand)}
        assert joined["run/slow"]["verdict"] == "regression"
        text = obs.render_compare(base, cand)
        assert "REGRESSION" in text
        assert "run/slow" in text

    def test_compare_ok_when_similar(self, tmp_path):
        base = self._manifest(tmp_path, "base.jsonl")
        cand = self._manifest(tmp_path, "cand.jsonl")
        # Generous threshold: two identical-structure runs should not flag.
        joined = obs.compare_phases(base, cand, threshold=5.0)
        assert all(e["verdict"] == "ok" for e in joined)

    def test_compare_handles_missing_phase(self, tmp_path):
        base = self._manifest(tmp_path, "base.jsonl")
        with obs.collect() as session:
            with obs.span("run"):
                with obs.span("fast"):
                    pass
        cand = obs.write_manifest(session, str(tmp_path / "cand.jsonl"))
        joined = {e["phase"]: e for e in obs.compare_phases(base, cand)}
        assert joined["run/slow"]["b"] is None
        assert joined["run/slow"]["verdict"] == "ok"


class TestCli:
    def test_report_cli(self, tmp_path, capsys):
        with obs.collect() as session:
            with obs.span("run"):
                pass
        path = obs.write_manifest(session, str(tmp_path / "m.jsonl"), label="cli")
        assert obs_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "cli" in out and "phase" in out

    def test_report_cli_compare_and_fail_flag(self, tmp_path, capsys):
        def make(extra):
            with obs.collect() as session:
                with obs.span("run"):
                    with obs.span("phase"):
                        time.sleep(0.002 + extra)
            return obs.write_manifest(session, str(tmp_path / f"m{extra}.jsonl"))

        base, cand = make(0.0), make(0.05)
        assert obs_main(["report", "--compare", base, cand]) == 0
        assert "delta" in capsys.readouterr().out
        assert obs_main(["report", "--compare", base, cand, "--fail-on-regression"]) == 2

    def test_report_cli_requires_manifest(self, capsys):
        assert obs_main(["report"]) == 1
        assert "required" in capsys.readouterr().err

    def test_list_cli(self, tmp_path, capsys):
        with obs.collect() as session:
            with obs.span("run"):
                pass
        obs.write_manifest(session, run_dir=str(tmp_path), label="listed")
        assert obs_main(["list", "--dir", str(tmp_path)]) == 0
        assert "label=listed" in capsys.readouterr().out

    def test_list_cli_missing_dir(self, tmp_path, capsys):
        assert obs_main(["list", "--dir", str(tmp_path / "nope")]) == 0
        assert "does not exist" in capsys.readouterr().out

    def test_run_cli_writes_manifest(self, tmp_path, capsys):
        out = str(tmp_path / "run.jsonl")
        rc = obs_main([
            "run", "--n", "64", "--b", "4", "--nb", "16",
            "--no-vectors", "--no-probes", "--out", out,
        ])
        assert rc == 0
        man = obs.load_manifest(out)
        assert man.phase_paths()  # instrumented phases present
        assert "manifest written" in capsys.readouterr().out


class TestEndToEnd:
    """The acceptance scenario: instrumented 256x256 syevd_2stage."""

    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((256, 256))
        a = (a + a.T) * 0.5
        with obs.collect() as session:
            res = syevd_2stage(a, b=16, nb=64, want_vectors=False,
                               tridiag_solver="dc", record_trace=True)
        path = obs.write_manifest(
            session,
            str(tmp_path_factory.mktemp("runs") / "syevd256.jsonl"),
            label="syevd256",
            precision="fp32",
            matrix={"n": 256},
            trace=res.engine.trace,
        )
        return session, res, path

    def test_phase_coverage_at_least_95_percent(self, recorded):
        _, _, path = recorded
        man = obs.load_manifest(path)
        assert man.total_wall > 0
        assert man.coverage() >= 0.95

    def test_phases_are_the_pipeline_stages(self, recorded):
        _, _, path = recorded
        man = obs.load_manifest(path)
        assert man.phase_paths() == ["syevd/sbr", "syevd/bulge", "syevd/tridiag_solve"]

    def test_gemm_flops_match_trace_aggregates(self, recorded):
        session, res, path = recorded
        trace = res.engine.trace
        # Events routed through the stage-1 engine must reproduce the
        # trace's flop total exactly (other engines, e.g. the plain
        # engine inside small QR helpers, report separately).
        by_engine = [e for e in session.gemm_events if e.engine == res.engine.name]
        assert sum(e.flops for e in by_engine) == trace.total_flops
        assert len(by_engine) == len(trace)
        # And the manifest's embedded trace round-trips to the same totals.
        man = obs.load_manifest(path)
        from repro.gemm import GemmTrace

        embedded = GemmTrace.from_dict(man.trace)
        assert embedded.total_flops == trace.total_flops
        assert embedded.shape_multiset() == trace.shape_multiset()

    def test_gemm_events_attributed_to_sbr_phase(self, recorded):
        session, _, _ = recorded
        sgemm_events = [e for e in session.gemm_events if e.engine == "sgemm"]
        assert sgemm_events
        assert all(e.span_path.startswith("syevd/sbr") for e in sgemm_events)

    def test_report_renders(self, recorded):
        _, _, path = recorded
        text = obs.render_report(path)
        assert "syevd/sbr" in text and "syevd/bulge" in text
        assert "gemm stream" in text
