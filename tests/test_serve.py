"""Tests for the EVD serving layer (``repro.serve``).

Unit tests for the queue/breaker/degradation policies, then end-to-end
service tests exercising the robustness paths: crash retry-resume,
checkpoint-backed preemption (bitwise-identical), deadline degradation,
backpressure, cancellation, coalesced batching, and the soak harness.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from conftest import random_symmetric
from repro.errors import AdmissionError, NumericalBreakdownError
from repro.serve import (
    PRIORITIES,
    BoundedJobQueue,
    CircuitBreaker,
    DegradationPolicy,
    EvdService,
    JobSpec,
    RetryPolicy,
    cheaper_precision,
    evd_stack,
)
from repro.serve.job import Job
from repro.serve.policy import AdmissionController


def _spec(rng, n=8, **kw):
    return JobSpec(a=random_symmetric(n, rng), **kw)


def _job(rng, n=8, **kw):
    return Job(_spec(rng, n, **kw), clock=time.monotonic)


# ---------------------------------------------------------------------------
# queue
# ---------------------------------------------------------------------------
class TestBoundedJobQueue:
    def test_priority_then_fifo_order(self, rng):
        q = BoundedJobQueue(capacity=8)
        batch = _job(rng, priority="batch")
        std = _job(rng, priority="standard")
        inter = _job(rng, priority="interactive")
        for job in (batch, std, inter):
            q.put(job)
        assert [q.get().spec.priority for _ in range(3)] == [
            "interactive", "standard", "batch",
        ]

    def test_reject_backpressure_raises_with_retry_after(self, rng):
        q = BoundedJobQueue(capacity=1, retry_after=0.5)
        q.put(_job(rng))
        with pytest.raises(AdmissionError) as ei:
            q.put(_job(rng))
        assert ei.value.reason == "queue_full"
        assert ei.value.retry_after == 0.5

    def test_block_backpressure_times_out(self, rng):
        q = BoundedJobQueue(capacity=1, backpressure="block")
        q.put(_job(rng))
        with pytest.raises(AdmissionError) as ei:
            q.put(_job(rng), timeout=0.05)
        assert ei.value.reason == "queue_full"

    def test_requeue_bypasses_capacity(self, rng):
        q = BoundedJobQueue(capacity=1)
        first = _job(rng)
        q.put(first)
        preempted = _job(rng)
        q.requeue(preempted)  # must not raise despite the full queue
        assert q.depth() == 2

    def test_requeued_job_keeps_seniority(self, rng):
        q = BoundedJobQueue(capacity=8)
        old = _job(rng, priority="standard")
        new = _job(rng, priority="standard")
        q.put(new)
        q.requeue(old)  # older seq re-enters ahead of newer arrival
        assert q.get() is old

    def test_lazy_drop_of_cancelled(self, rng):
        q = BoundedJobQueue(capacity=4)
        job = _job(rng)
        q.put(job)
        job.finish("cancelled", error="test")
        assert q.get(timeout=0.01) is None

    def test_drain_class(self, rng):
        q = BoundedJobQueue(capacity=8)
        jobs = [_job(rng, priority=p)
                for p in ("batch", "standard", "batch", "interactive")]
        for j in jobs:
            q.put(j)
        drained = q.drain_class("batch")
        assert len(drained) == 2
        assert all(j.spec.priority == "batch" for j in drained)
        assert q.depth() == 2

    def test_take_matching_preserves_rest(self, rng):
        q = BoundedJobQueue(capacity=8)
        small = [_job(rng, n=4, coalescible=True) for _ in range(3)]
        big = _job(rng, n=16)
        for j in small + [big]:
            q.put(j)
        taken = q.take_matching(
            lambda j: j.spec.a.shape[0] == 4, limit=2)
        assert len(taken) == 2
        assert q.depth() == 2

    def test_closed_queue_rejects(self, rng):
        q = BoundedJobQueue(capacity=2)
        q.close()
        with pytest.raises(AdmissionError) as ei:
            q.put(_job(rng))
        assert ei.value.reason == "shutdown"


# ---------------------------------------------------------------------------
# circuit breaker + admission
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        t = [0.0]
        br = CircuitBreaker(failure_threshold=3, cooldown=10.0,
                            clock=lambda: t[0])
        assert br.allow()
        for _ in range(3):
            br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        assert br.retry_after() == pytest.approx(10.0)

    def test_half_open_single_probe_then_close(self):
        t = [0.0]
        br = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                            clock=lambda: t[0])
        br.record_failure()
        t[0] = 6.0
        assert br.state == "half_open"
        assert br.allow()       # the probe
        assert not br.allow()   # concurrent admit rejected
        br.record_success()
        assert br.state == "closed"

    def test_half_open_failure_reopens(self):
        t = [0.0]
        br = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                            clock=lambda: t[0])
        br.record_failure()
        t[0] = 6.0
        assert br.allow()
        br.record_failure()
        assert br.state == "open"

    def test_success_resets_failure_count(self):
        br = CircuitBreaker(failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"


class TestAdmissionController:
    def test_shutdown_rejects(self):
        ac = AdmissionController()
        ac.begin_shutdown()
        with pytest.raises(AdmissionError) as ei:
            ac.admit()
        assert ei.value.reason == "shutdown"

    def test_open_breaker_rejects_with_retry_after(self):
        t = [0.0]
        br = CircuitBreaker(failure_threshold=1, cooldown=7.0,
                            clock=lambda: t[0])
        ac = AdmissionController(breaker=br)
        br.record_failure()
        with pytest.raises(AdmissionError) as ei:
            ac.admit()
        assert ei.value.reason == "circuit_open"
        assert ei.value.retry_after == pytest.approx(7.0)

    def test_stall_gate_needs_active_jobs(self):
        class StalledReg:
            def progress_age(self):
                return 99.0

        ac = AdmissionController(registry=StalledReg(), stall_after=30.0)
        ac.admit()  # idle pool: stall signal meaningless, admit
        ac.job_started()
        with pytest.raises(AdmissionError) as ei:
            ac.admit()
        assert ei.value.reason == "stalled"
        ac.job_ended()
        ac.admit()


# ---------------------------------------------------------------------------
# degradation policy
# ---------------------------------------------------------------------------
class TestDegradation:
    def test_cheaper_precision_ladder(self):
        assert cheaper_precision("fp64") == "fp32"
        assert cheaper_precision("fp32") == "tf32_tc"
        assert cheaper_precision("fp16_tc") is None

    def test_overload_sheds_batch_class(self, rng):
        pol = DegradationPolicy()
        assert pol.apply_overload(_job(rng, priority="batch")) is False

    def test_overload_downgrades_precision(self, rng):
        pol = DegradationPolicy()
        job = _job(rng, priority="standard", precision="fp32")
        assert pol.apply_overload(job) is True
        assert job.precision == "tf32_tc"
        assert job.degradations[0]["kind"] == "downgrade_precision"
        assert job.spec.precision == "fp32"  # client's spec untouched

    def test_overload_never_downgrades_checkpointed(self, rng):
        pol = DegradationPolicy()
        job = _job(rng, priority="standard", precision="fp32",
                   checkpointed=True)
        assert pol.apply_overload(job) is True
        assert job.precision == "fp32"

    def test_deadline_miss_drops_vectors(self, rng):
        pol = DegradationPolicy()
        job = _job(rng, priority="standard")
        assert pol.apply_deadline_miss(job) is True
        assert job.deadline_missed
        assert not job.want_vectors
        assert job.degradations[0]["kind"] == "drop_vectors"


# ---------------------------------------------------------------------------
# coalescer
# ---------------------------------------------------------------------------
class TestEvdStack:
    def test_matches_dense_eigh(self, rng):
        mats = [random_symmetric(12, rng) for _ in range(4)]
        out = evd_stack(mats)
        assert len(out) == 4
        for a, (lam, x) in zip(mats, out):
            np.testing.assert_allclose(lam, np.linalg.eigvalsh(a),
                                       atol=1e-8)
            np.testing.assert_allclose(a @ x, x @ np.diag(lam), atol=1e-8)
            np.testing.assert_allclose(x.T @ x, np.eye(12), atol=1e-10)

    def test_rejects_mixed_shapes(self, rng):
        with pytest.raises(ValueError, match="share one shape"):
            evd_stack([random_symmetric(8, rng), random_symmetric(9, rng)])

    def test_values_only(self, rng):
        mats = [random_symmetric(6, rng) for _ in range(2)]
        for lam, x in evd_stack(mats, want_vectors=False):
            assert x is None
            assert lam.shape == (6,)


# ---------------------------------------------------------------------------
# end-to-end service
# ---------------------------------------------------------------------------
def _service(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("spool_dir", str(tmp_path / "spool"))
    kw.setdefault("scheduler_interval", 0.01)
    kw.setdefault("tick", 0.01)
    return EvdService(**kw)


class TestServiceBasic:
    def test_mixed_burst_all_terminal_and_accurate(self, rng, tmp_path):
        with _service(tmp_path, workers=2) as svc:
            mats, ids = [], []
            for i, prio in enumerate(PRIORITIES):
                a = random_symmetric(20 + 4 * i, rng)
                mats.append(a)
                ids.append(svc.submit(a, priority=prio, tag=f"t{i}"))
            for a, jid in zip(mats, ids):
                res = svc.result(jid, timeout=60.0)
                assert res is not None and res.outcome == "done"
                np.testing.assert_allclose(
                    res.eigenvalues, np.linalg.eigvalsh(a), atol=1e-4)
        # manifest has one line per job
        lines = [json.loads(l) for l in open(svc.manifest_path)]
        assert len(lines) == 3
        assert {l["state"] for l in lines} == {"done"}

    def test_submit_validates_once(self, rng, tmp_path):
        from repro.errors import ValidationError
        with _service(tmp_path) as svc:
            bad = random_symmetric(8, rng)
            bad[0, 0] = np.nan
            with pytest.raises(ValidationError):
                svc.submit(bad)
            with pytest.raises(AdmissionError) as ei:
                svc.submit(random_symmetric(8, rng), priority="vip")
            assert ei.value.reason == "invalid"

    def test_submit_after_shutdown_rejected(self, rng, tmp_path):
        svc = _service(tmp_path).start()
        svc.shutdown()
        with pytest.raises(AdmissionError) as ei:
            svc.submit(random_symmetric(8, rng))
        assert ei.value.reason == "shutdown"

    def test_queue_full_backpressure(self, rng, tmp_path):
        gate = threading.Event()
        with _service(tmp_path, queue_capacity=1) as svc:
            svc.fault_factory = (
                lambda job: gate.wait(timeout=30.0) and None
                if job.spec.tag == "blocker" else None
            )
            blocker = svc.submit(random_symmetric(8, rng), tag="blocker",
                                 checkpointed=True)
            # Give the worker time to occupy itself with the blocker.
            deadline = time.monotonic() + 5.0
            while svc.job(blocker).state == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            queued = svc.submit(random_symmetric(8, rng), tag="waiter")
            with pytest.raises(AdmissionError) as ei:
                svc.submit(random_symmetric(8, rng), tag="overflow")
            assert ei.value.reason == "queue_full"
            assert ei.value.retry_after > 0
            gate.set()
            assert svc.result(blocker, timeout=60.0).ok
            assert svc.result(queued, timeout=60.0).ok

    def test_cancel_queued_job(self, rng, tmp_path):
        gate = threading.Event()
        with _service(tmp_path) as svc:
            svc.fault_factory = (
                lambda job: gate.wait(timeout=30.0) and None
                if job.spec.tag == "blocker" else None
            )
            blocker = svc.submit(random_symmetric(8, rng), tag="blocker",
                                 checkpointed=True)
            victim = svc.submit(random_symmetric(8, rng), tag="victim")
            assert svc.cancel(victim)
            gate.set()
            res = svc.result(victim, timeout=60.0)
            assert res.outcome == "cancelled"
            assert svc.result(blocker, timeout=60.0).ok
            assert not svc.cancel(victim)  # already terminal

    def test_coalesced_batch(self, rng, tmp_path):
        gate = threading.Event()
        with _service(tmp_path) as svc:
            svc.fault_factory = (
                lambda job: gate.wait(timeout=30.0) and None
                if job.spec.tag == "blocker" else None
            )
            blocker = svc.submit(random_symmetric(8, rng), tag="blocker",
                                 checkpointed=True)
            mats = [random_symmetric(16, rng) for _ in range(3)]
            ids = [svc.submit(a, coalescible=True, priority="interactive")
                   for a in mats]
            gate.set()
            results = [svc.result(j, timeout=60.0) for j in ids]
            assert svc.result(blocker, timeout=60.0).ok
        assert all(r.outcome == "done" for r in results)
        assert all(r.batched for r in results)
        for a, r in zip(mats, results):
            np.testing.assert_allclose(
                r.eigenvalues, np.linalg.eigvalsh(a), atol=1e-8)

    def test_bench_rows_have_percentiles(self, rng, tmp_path):
        from repro.obs.analytics.benchstore import load_session
        with _service(tmp_path) as svc:
            for prio in ("interactive", "standard"):
                jid = svc.submit(random_symmetric(12, rng), priority=prio)
                assert svc.result(jid, timeout=60.0).ok
            out = svc.write_bench(str(tmp_path / "BENCH_serve.json"))
        session = load_session(out)
        keys = {row["key"] for row in session["scenarios"]}
        assert keys == {"serve-interactive", "serve-standard"}
        for row in session["scenarios"]:
            assert row["p50"] > 0 and row["p99"] >= row["p50"]
            assert len(row["wall"]) == row["jobs"] == 1


class TestServiceResilience:
    def test_crash_retry_resumes_bitwise(self, rng, tmp_path):
        from repro.eig.driver import syevd_2stage
        from repro.resilience.crash import CrashFaultSpec, CrashInjector

        a = random_symmetric(32, rng)
        with _service(tmp_path) as svc:
            svc.fault_factory = (
                lambda job: CrashInjector(CrashFaultSpec(
                    site="ckpt.save.*.post", call_index=1, kind="kill"))
                if job.attempts == 1 else None
            )
            jid = svc.submit(a, b=4, checkpointed=True,
                             retry=RetryPolicy(max_attempts=3,
                                               backoff_base=0.001))
            res = svc.result(jid, timeout=120.0)
        assert res.outcome == "done"
        assert res.attempts == 2  # crashed once, resumed once
        ref = syevd_2stage(a, b=4, precision="fp32",
                           checkpoint=str(tmp_path / "ref"))
        assert np.array_equal(res.eigenvalues, ref.eigenvalues)
        assert np.array_equal(res.eigenvectors, ref.eigenvectors)

    def test_crash_exhausts_retries_to_failed(self, rng, tmp_path):
        from repro.resilience.crash import CrashFaultSpec, CrashInjector

        with _service(tmp_path) as svc:
            svc.fault_factory = lambda job: CrashInjector(CrashFaultSpec(
                site="ckpt.save.*.post", call_index=0, kind="kill"))
            jid = svc.submit(random_symmetric(16, rng), b=4,
                             checkpointed=True,
                             retry=RetryPolicy(max_attempts=2,
                                               backoff_base=0.001))
            res = svc.result(jid, timeout=120.0)
        assert res.outcome == "failed"
        assert res.attempts == 2
        assert res.error_type == "SimulatedCrashError"

    def test_numerical_breakdown_escalates_precision(self, rng, tmp_path):
        class BreakOnce:
            def __init__(self):
                self.fired = False

            def fire(self, site, **kw):
                if not self.fired and site.endswith(".post"):
                    self.fired = True
                    raise NumericalBreakdownError("injected panel blowup")

        with _service(tmp_path) as svc:
            svc.fault_factory = (
                lambda job: BreakOnce() if job.attempts == 1 else None
            )
            jid = svc.submit(random_symmetric(24, rng), b=4,
                             precision="fp32", checkpointed=True,
                             retry=RetryPolicy(max_attempts=3,
                                               backoff_base=0.001))
            res = svc.result(jid, timeout=120.0)
        assert res.outcome == "degraded"  # recorded escalation
        assert res.precision_used == "fp64"
        kinds = [d["kind"] for d in res.degradations]
        assert kinds == ["escalate_precision"]

    def test_priority_preemption_bitwise_identical(self, rng, tmp_path):
        from repro.eig.driver import syevd_2stage

        a = random_symmetric(48, rng)
        with _service(tmp_path, coalesce=False) as svc:
            batch = svc.submit(a, b=4, priority="batch", checkpointed=True,
                               tag="victim")
            deadline = time.monotonic() + 10.0
            while svc.job(batch).state == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.002)
            inter = svc.submit(random_symmetric(12, rng),
                               priority="interactive", tag="urgent")
            res_i = svc.result(inter, timeout=120.0)
            res_b = svc.result(batch, timeout=120.0)
        assert res_i.outcome == "done"
        assert res_b.ok
        assert res_b.preemptions >= 1
        # The interactive job jumped the line while the batch job sat
        # evicted at its checkpoint.
        ref = syevd_2stage(a, b=4, precision="fp32",
                           checkpoint=str(tmp_path / "ref"))
        assert np.array_equal(res_b.eigenvalues, ref.eigenvalues)
        assert np.array_equal(res_b.eigenvectors, ref.eigenvectors)

    def test_cancel_running_checkpointed_job(self, rng, tmp_path):
        with _service(tmp_path) as svc:
            jid = svc.submit(random_symmetric(48, rng), b=4,
                             checkpointed=True)
            deadline = time.monotonic() + 10.0
            while svc.job(jid).token is None:
                assert time.monotonic() < deadline
                time.sleep(0.002)
            assert svc.cancel(jid)
            res = svc.result(jid, timeout=120.0)
        assert res.outcome == "cancelled"

    def test_deadline_missed_job_degraded_not_lost(self, rng, tmp_path):
        with _service(tmp_path) as svc:
            jid = svc.submit(random_symmetric(48, rng), b=4,
                             priority="standard", checkpointed=True,
                             deadline_seconds=0.01)
            res = svc.result(jid, timeout=120.0)
        assert res is not None
        assert res.outcome in ("degraded", "shed")
        if res.outcome == "degraded":
            assert res.deadline_missed
            assert res.eigenvalues is not None

    def test_overload_sheds_batch_class(self, rng, tmp_path):
        gate = threading.Event()
        with _service(tmp_path, queue_capacity=5) as svc:
            svc.fault_factory = (
                lambda job: gate.wait(timeout=30.0) and None
                if job.spec.tag == "blocker" else None
            )
            blocker = svc.submit(random_symmetric(8, rng), tag="blocker",
                                 checkpointed=True)
            deadline = time.monotonic() + 5.0
            while svc.job(blocker).state == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            shed_ids = [svc.submit(random_symmetric(8, rng),
                                   priority="batch", tag=f"shed-{i}")
                        for i in range(4)]  # fullness 4/5 >= 0.8
            results = [svc.result(j, timeout=30.0) for j in shed_ids]
            gate.set()
            assert svc.result(blocker, timeout=60.0).ok
        assert all(r is not None and r.outcome == "shed" for r in results)


class TestSoakHarness:
    def test_soak_cli_passes(self, tmp_path, capsys):
        from repro.serve.__main__ import main

        rc = main([
            "--jobs", "9", "--workers", "2", "--n", "32",
            "--queue-cap", "16", "--crash-one", "--seed", "7",
            "--spool", str(tmp_path / "spool"),
            "--bench-out", str(tmp_path / "BENCH_serve.json"),
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "soak ok" in out
        assert os.path.exists(tmp_path / "BENCH_serve.json")


class TestBulgeVariantServing:
    def test_wavefront_job_end_to_end(self, rng, tmp_path):
        a = random_symmetric(24, rng)
        with _service(tmp_path) as svc:
            jid = svc.submit(a, bulge_variant="wavefront", b=4)
            res = svc.result(jid, timeout=60.0)
            assert res is not None and res.outcome == "done"
            np.testing.assert_allclose(
                res.eigenvalues, np.linalg.eigvalsh(a), atol=1e-4)
        lines = [json.loads(l) for l in open(svc.manifest_path)]
        assert lines[0]["bulge_variant"] == "wavefront"

    def test_default_variant_in_manifest(self, rng, tmp_path):
        with _service(tmp_path) as svc:
            jid = svc.submit(random_symmetric(12, rng))
            assert svc.result(jid, timeout=60.0).outcome == "done"
        lines = [json.loads(l) for l in open(svc.manifest_path)]
        assert lines[0]["bulge_variant"] == "givens"

    def test_unknown_variant_rejected_at_admission(self, rng, tmp_path):
        with _service(tmp_path) as svc:
            with pytest.raises(AdmissionError) as ei:
                svc.submit(random_symmetric(8, rng), bulge_variant="fast")
            assert ei.value.reason == "invalid"
