"""Tests of the live monitoring layer (:mod:`repro.obs.live`).

Covers, per the PR-6 acceptance criteria:

- quantile-sketch accuracy against exact numpy percentiles, weighted
  adds (the ``gemm_batched`` contract), merging, and serialization;
- registry thread-safety (exact totals under concurrent recorders) and
  batch-aware GEMM aggregation;
- ETA monotonicity and convergence of the progress estimator on a fake
  clock;
- the zero-overhead-off contract: with no registry installed, the hook
  helpers retain no allocations and the SBR steady state stays
  allocation-free (the PR-5 workspace accounting harness);
- span-context propagation into worker threads (look-ahead, TSQR);
- sinks (Prometheus render/parse, JSONL stream with torn-final-line
  tolerance, TTY line), heartbeat, alert rules and the no-progress
  watchdog, the reporter, and the driver/manifest/CLI integration.
"""

from __future__ import annotations

import io
import json
import os
import threading

import numpy as np
import pytest

from repro.gemm.engine import SgemmEngine, make_engine
from repro.obs import spans as obs
from repro.obs.live import (
    AlertRule,
    Heartbeat,
    LiveConfig,
    LiveSession,
    MetricsRegistry,
    NoProgressWatchdog,
    ProgressEstimator,
    QuantileSketch,
    Reporter,
    evaluate_alerts,
    parse_prometheus,
    phase_plan,
    read_heartbeat,
    render_prometheus,
    resolve_live,
    use_registry,
    validate_metrics_stream,
)
from repro.obs.live import registry as live_registry
from repro.obs.live.sinks import JsonlSink, PrometheusSink, TtySink

from conftest import random_symmetric


class FakeClock:
    """Deterministic, manually advanced time source."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


# ----------------------------------------------------------------------
# Quantile sketch
# ----------------------------------------------------------------------


class TestQuantileSketch:
    def test_accuracy_vs_numpy_percentiles(self, rng):
        samples = rng.lognormal(mean=-8.0, sigma=1.5, size=5000)
        sk = QuantileSketch(alpha=0.01)
        for v in samples:
            sk.add(v)
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(samples, q))
            est = sk.quantile(q)
            # alpha-relative guarantee, plus slack for numpy's
            # interpolation between adjacent order statistics.
            assert abs(est - exact) <= 0.03 * exact

    def test_weighted_add_equals_repeated_adds(self):
        a, b = QuantileSketch(), QuantileSketch()
        for v in (1e-4, 3e-4, 9e-4):
            a.add(v, count=5)
            for _ in range(5):
                b.add(v)
        assert a.count == b.count == 15
        assert a.sum == pytest.approx(b.sum)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert a.quantile(q) == b.quantile(q)

    def test_merge_matches_combined(self, rng):
        xs = rng.lognormal(size=400)
        a, b, both = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for i, v in enumerate(xs):
            (a if i % 2 else b).add(v)
            both.add(v)
        a.merge(b)
        assert a.count == both.count
        assert a.sum == pytest.approx(both.sum)
        for q in (0.1, 0.5, 0.9):
            assert a.quantile(q) == both.quantile(q)

    def test_merge_alpha_mismatch_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))

    def test_serialization_round_trip(self, rng):
        sk = QuantileSketch()
        for v in rng.lognormal(size=100):
            sk.add(v)
        back = QuantileSketch.from_dict(
            json.loads(json.dumps(sk.to_dict()))
        )
        assert back.count == sk.count
        for q in (0.5, 0.99):
            assert back.quantile(q) == sk.quantile(q)

    def test_zero_and_negative_values(self):
        sk = QuantileSketch(min_value=1e-9)
        sk.add(0.0)
        sk.add(-5.0)
        sk.add(1.0)
        assert sk.count == 3
        assert sk.quantile(0.0) == 0.0
        assert sk.quantile(1.0) == pytest.approx(1.0, rel=0.02)

    def test_empty_sketch(self):
        sk = QuantileSketch()
        assert len(sk) == 0
        assert sk.quantile(0.5) == 0.0
        assert sk.mean == 0.0
        assert sk.summary()["count"] == 0

    def test_summary_keys_are_strings(self):
        sk = QuantileSketch()
        sk.add(1.0)
        assert set(sk.summary()["quantiles"]) == {"0.5", "0.9", "0.99"}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry(clock=FakeClock())
        reg.inc("c", 2.0, op="gemm")
        reg.inc("c", 3.0, op="gemm")
        reg.inc("c", 1.0, op="syr2k")
        reg.set("g", 7.5, phase="sbr")
        reg.observe("h", 0.5)
        assert reg.counter_value("c", op="gemm") == 5.0
        assert reg.counter_total("c") == 6.0
        assert reg.gauge_value("g", phase="sbr") == 7.5
        assert reg.gauge_value("g", phase="nope") is None
        assert reg.histogram("h").count == 1

    def test_label_order_is_normalized(self):
        reg = MetricsRegistry(clock=FakeClock())
        reg.inc("c", a="1", b="2")
        reg.inc("c", b="2", a="1")
        assert reg.counter_value("c", a="1", b="2") == 2.0

    def test_record_gemm_batch_weighting(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        reg.record_gemm(32, 32, 8, op="gemm_batched", batch=4, seconds=0.008)
        reg.record_gemm(32, 32, 8, op="gemm", batch=1, seconds=0.001)
        # One launch, four products, per-product latency weighted by 4.
        assert reg.counter_value(
            "repro_gemm_calls_total", op="gemm_batched") == 1.0
        assert reg.counter_value(
            "repro_gemm_products_total", op="gemm_batched") == 4.0
        assert reg.counter_total("repro_gemm_flops_total") == pytest.approx(
            2.0 * 32 * 32 * 8 * 5
        )
        hist = reg.histogram("repro_gemm_latency_seconds", op="gemm_batched")
        assert hist.count == 4
        assert hist.quantile(0.5) == pytest.approx(0.002, rel=0.02)
        merged = reg.histogram_merged("repro_gemm_latency_seconds")
        assert merged.count == 5

    def test_thread_safety_exact_totals(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                reg.inc("repro_test_total")
                reg.record_gemm(8, 8, 8, batch=2, seconds=1e-6)
                reg.observe("h", 1e-3)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert reg.counter_total("repro_test_total") == total
        assert reg.counter_total("repro_gemm_products_total") == 2 * total
        assert reg.histogram("h").count == total
        # Every worker thread left a liveness mark.
        assert len(reg.worker_ages()) >= n_threads

    def test_snapshot_shape(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        reg.inc("repro_x_total", op="gemm")
        reg.set("repro_g", 1.0)
        reg.observe("repro_h_seconds", 0.5)
        clk.advance(2.0)
        snap = reg.snapshot()
        assert snap["uptime"] == pytest.approx(2.0)
        assert snap["counters"][0] == {
            "name": "repro_x_total", "labels": {"op": "gemm"}, "value": 1.0,
        }
        assert snap["gauges"][0]["value"] == 1.0
        assert snap["histograms"][0]["count"] == 1
        assert json.dumps(snap)  # JSON-serializable throughout

    def test_ws_take_hook(self):
        reg = MetricsRegistry(clock=FakeClock())
        reg.ws_take("t", True, 0)
        reg.ws_take("t", False, 1024)
        assert reg.counter_value("repro_ws_takes_total", result="hit") == 1.0
        assert reg.counter_value("repro_ws_takes_total", result="miss") == 1.0
        assert reg.counter_total("repro_ws_bytes_allocated_total") == 1024.0

    def test_install_uninstall_restores_previous(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        assert live_registry.active_registry() is None
        with use_registry(a):
            assert live_registry.active_registry() is a
            with use_registry(b):
                assert live_registry.active_registry() is b
            assert live_registry.active_registry() is a
        assert live_registry.active_registry() is None

    def test_use_registry_none_is_noop(self):
        with use_registry(None) as reg:
            assert reg is None
            assert live_registry.active_registry() is None


# ----------------------------------------------------------------------
# Zero-overhead-off contract
# ----------------------------------------------------------------------


class TestZeroOverheadOff:
    def test_module_helpers_retain_no_allocations(self):
        import tracemalloc

        assert live_registry.active_registry() is None
        # Warm up any lazy interning, then measure retained bytes.
        live_registry.record_gemm(8, 8, 8, seconds=0.0)
        live_registry.ws_take("t", True, 0)
        live_registry.inc("repro_test_total")
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(200):
            live_registry.record_gemm(8, 8, 8, seconds=0.0)
            live_registry.ws_take("t", True, 0)
            live_registry.inc("repro_test_total")
            live_registry.touch_worker()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before == 0

    def test_lifecycle_span_retains_no_allocations_when_off(self):
        # The serving layer calls lifecycle_span on every job event;
        # with no collector active it must be one module-attribute read
        # and a None check, retaining nothing.
        import tracemalloc

        from repro.obs.tracing import TraceContext, lifecycle_span

        assert obs._active is None
        ctx = TraceContext.new()
        lifecycle_span("serve.attempt", 0.1, trace=ctx, worker="w0")  # warm up
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(200):
            lifecycle_span("serve.attempt", 0.1, trace=ctx, worker="w0")
            lifecycle_span("serve.queue_wait", 0.0)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before == 0

    def test_sbr_steady_state_allocation_free_with_live_imported(self, rng):
        # PR-5 harness: with the live module imported but no registry
        # installed, a second identical run must hit the arena every
        # time — no new allocations on the hot path.
        from repro.perf import Workspace
        from repro.sbr.wy import sbr_wy

        ws = Workspace()
        a = random_symmetric(128, rng)
        sbr_wy(a, 8, 32, engine=make_engine("fp32"), want_q=False, workspace=ws)
        misses_after_first = ws.misses
        sbr_wy(a, 8, 32, engine=make_engine("fp32"), want_q=False, workspace=ws)
        assert ws.misses == misses_after_first
        assert ws.hits > 0


# ----------------------------------------------------------------------
# Span-context propagation (satellite: look-ahead phase attribution)
# ----------------------------------------------------------------------


class TestSpanContextPropagation:
    def test_wrap_context_is_identity_when_off(self):
        def f():
            return 1

        assert obs.wrap_context(f) is f

    def test_worker_thread_inherits_span_path(self):
        results = []
        with obs.collect() as session:
            with obs.span("syevd"):
                wrapped = obs.wrap_context(self._leaf_work)
                t = threading.Thread(target=lambda: results.append(wrapped()))
                t.start()
                t.join()
        assert results == ["done"]
        leaf = [s for s in session.spans if s.name == "leaf"]
        assert len(leaf) == 1
        assert leaf[0].path == "syevd/leaf"
        assert leaf[0].depth == 1

    @staticmethod
    def _leaf_work():
        with obs.span("leaf"):
            return "done"

    def test_lookahead_gemm_events_keep_phase_attribution(self, rng):
        from repro.sbr.wy import sbr_wy

        a = random_symmetric(128, rng)
        with obs.collect() as session:
            with obs.span("sbr"):
                sbr_wy(a, 8, 32, engine=SgemmEngine(), want_q=False,
                       lookahead=True)
        assert session.gemm_events
        # Satellite fix: no event may lose its enclosing phase because
        # it ran on the look-ahead worker thread.
        assert all(ev.span_path.startswith("sbr") for ev in session.gemm_events)

    def test_lookahead_events_under_registry_touch_worker(self, rng):
        from repro.sbr.wy import sbr_wy

        a = random_symmetric(128, rng)
        reg = MetricsRegistry()
        sbr_wy(a, 8, 32, engine=SgemmEngine(), want_q=False,
               lookahead=True, metrics=reg)
        assert reg.counter_total("repro_gemm_calls_total") > 0
        assert any("sbr-la" in name for name in reg.worker_ages())


# ----------------------------------------------------------------------
# Batch-aware aggregation in the collector path (satellite 1)
# ----------------------------------------------------------------------


class TestBatchWeightedAggregates:
    def _batched_session(self):
        with obs.collect() as session:
            with obs.span("phase"):
                obs.gemm_event(16, 16, 8, tag="t", engine="e",
                               op="gemm_batched", seconds=0.004, batch=4)
                obs.gemm_event(16, 16, 8, tag="t", engine="e",
                               op="gemm", seconds=0.001)
        return session

    def test_gemm_summary_counts_products_not_launches(self):
        summary = self._batched_session().gemm_summary()
        assert summary["calls"] == 5
        assert summary["launches"] == 2
        assert summary["by_tag"]["t"]["calls"] == 5
        assert summary["by_engine"]["e"] == 5
        assert summary["flops"] == 2 * 16 * 16 * 8 * 5

    def test_manifest_gemm_by_phase_weights_batch(self, tmp_path):
        from repro.obs import load_manifest, write_manifest

        path = write_manifest(
            self._batched_session(), str(tmp_path / "m.jsonl")
        )
        man = load_manifest(path)
        assert man.gemm_by_phase()["phase"]["calls"] == 5

    def test_attribution_weights_batch(self, tmp_path):
        from repro.obs import write_manifest
        from repro.obs.analytics import attribute_manifest

        path = write_manifest(
            self._batched_session(), str(tmp_path / "m.jsonl")
        )
        report = attribute_manifest(path)
        assert report.totals["calls"] == 5


# ----------------------------------------------------------------------
# Progress estimator
# ----------------------------------------------------------------------


class TestPhasePlan:
    def test_full_run_phases(self):
        plan = phase_plan(256, 16, 64)
        assert set(plan) == {"sbr", "bulge", "tridiag_solve", "back_transform"}
        assert all(v > 0 for v in plan.values())

    def test_values_only_drops_back_transform(self):
        plan = phase_plan(256, 16, 64, want_vectors=False)
        assert "back_transform" not in plan

    def test_zy_method(self):
        plan = phase_plan(128, 8, method="zy")
        assert plan["sbr"] > 0


class TestProgressEstimator:
    def test_eta_monotone_under_constant_rate(self):
        plan = {"sbr": 1000.0, "bulge": 500.0}
        est = ProgressEstimator(plan)
        est.on_phase_start("sbr", 0.0)
        assert est.eta_seconds() is None  # no throughput signal yet
        etas = []
        t = 0.0
        for _ in range(9):
            t += 1.0
            est.on_work("sbr", 100.0, t)
            eta = est.eta_seconds()
            assert eta is not None
            etas.append(eta)
        # Constant 100 units/s: ETA must be monotone non-increasing.
        assert all(a >= b - 1e-9 for a, b in zip(etas, etas[1:]))
        assert etas[-1] == pytest.approx((1500.0 - 900.0) / 100.0)

    def test_converges_to_complete(self):
        plan = {"sbr": 100.0, "bulge": 50.0}
        est = ProgressEstimator(plan)
        est.on_phase_start("sbr", 0.0)
        est.on_work("sbr", 60.0, 1.0)
        assert est.fraction() == pytest.approx(60.0 / 150.0)
        est.on_phase_end("sbr", 2.0)       # snaps sbr to 100%
        assert est.fraction("sbr") == 1.0
        est.on_phase_start("bulge", 2.0)
        est.on_phase_end("bulge", 3.0)
        assert est.fraction() == 1.0
        assert est.eta_seconds() == 0.0

    def test_work_capped_at_plan(self):
        est = ProgressEstimator({"sbr": 100.0})
        est.on_phase_start("sbr", 0.0)
        est.on_work("sbr", 1e9, 1.0)  # model underestimated
        assert est.fraction("sbr") == 1.0

    def test_unplanned_phase_work_goes_to_current(self):
        est = ProgressEstimator({"sbr": 100.0})
        est.on_phase_start("sbr", 0.0)
        est.on_work("mystery", 50.0, 1.0)
        assert est.done["sbr"] == 50.0

    def test_publishes_gauges_on_registry(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        est = ProgressEstimator({"sbr": 100.0})
        est.attach(reg)
        assert reg.estimator is est
        est.on_phase_start("sbr", clk.advance(1.0))
        est.on_work("sbr", 25.0, clk.advance(1.0))
        est.on_work("sbr", 25.0, clk.advance(1.0))
        assert reg.gauge_value("repro_progress_fraction", phase="sbr") == 0.5
        assert reg.gauge_value("repro_progress_fraction", phase="total") == 0.5
        assert reg.gauge_value("repro_eta_seconds", phase="total") == pytest.approx(2.0)

    def test_record_gemm_feeds_estimator_under_phase(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        est = ProgressEstimator({"sbr": 1e6})
        est.attach(reg)
        reg.span_started("syevd", 0)
        reg.span_started("syevd/sbr", 1)
        assert reg.phase == "sbr"
        clk.advance(1.0)
        reg.record_gemm(32, 32, 8, seconds=0.001)
        assert est.done["sbr"] == 2.0 * 32 * 32 * 8
        reg.span_finished("syevd/sbr", 1, 1.0)
        assert est.fraction("sbr") == 1.0
        assert reg.phase == "syevd"


# ----------------------------------------------------------------------
# Alerts
# ----------------------------------------------------------------------


class TestAlerts:
    def test_threshold_rule_fires_once(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        rule = AlertRule("escalations", "repro_resilience_escalations_total",
                         threshold=0.0, op=">")
        assert evaluate_alerts(reg, [rule]) == []
        reg.inc("repro_resilience_escalations_total")
        new = evaluate_alerts(reg, [rule])
        assert len(new) == 1 and new[0]["rule"] == "escalations"
        # Persisting condition refreshes count, fires no new alert.
        assert evaluate_alerts(reg, [rule]) == []
        assert reg.alerts[0]["count"] == 2

    def test_gauge_rule_with_labels(self):
        reg = MetricsRegistry(clock=FakeClock())
        rule = AlertRule("resid", "repro_solver_residual", threshold=1e-3,
                         op=">", labels={"phase": "lobpcg"})
        reg.set("repro_solver_residual", 1e-2, phase="lobpcg")
        assert len(evaluate_alerts(reg, [rule])) == 1

    def test_unknown_op_rejected(self):
        reg = MetricsRegistry(clock=FakeClock())
        reg.inc("m")
        with pytest.raises(ValueError, match="op"):
            AlertRule("x", "m", threshold=0.0, op="~").check(reg)

    def test_no_progress_watchdog(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        dog = NoProgressWatchdog(stall_seconds=5.0)
        clk.advance(4.0)
        assert evaluate_alerts(reg, watchdog=dog) == []
        clk.advance(2.0)
        fired = evaluate_alerts(reg, watchdog=dog)
        assert len(fired) == 1 and fired[0]["rule"] == "no_progress"
        # Progress resets the clock; no further escalation of count
        # needs asserting — but a new evaluation fires nothing new.
        reg.mark_progress()
        assert evaluate_alerts(reg, watchdog=dog) == []

    def test_watchdog_fires_once_without_rearm(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        dog = NoProgressWatchdog(stall_seconds=5.0)
        clk.advance(6.0)
        assert len(evaluate_alerts(reg, watchdog=dog)) == 1
        # An arbitrarily long continuing stall still only refreshes the
        # original alert's count — the default contract is fire-once.
        for _ in range(5):
            clk.advance(100.0)
            assert evaluate_alerts(reg, watchdog=dog) == []
        assert len(reg.alerts) == 1
        assert reg.alerts[0]["count"] == 6

    def test_watchdog_rearm_after_fires_repeated_stall_alerts(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        dog = NoProgressWatchdog(stall_seconds=5.0, rearm_after=60.0)
        clk.advance(6.0)
        fired = evaluate_alerts(reg, watchdog=dog)
        assert len(fired) == 1 and fired[0]["rule"] == "no_progress"
        # Within the rearm window: same alert, count refreshed.
        clk.advance(30.0)
        assert evaluate_alerts(reg, watchdog=dog) == []
        assert reg.alerts[0]["count"] == 2
        # Past the window the still-stalled run fires a fresh alert.
        clk.advance(31.0)
        fired = evaluate_alerts(reg, watchdog=dog)
        assert len(fired) == 1 and fired[0]["rule"] == "no_progress#2"
        # And again one window later — each escalation is a new record.
        clk.advance(61.0)
        fired = evaluate_alerts(reg, watchdog=dog)
        assert len(fired) == 1 and fired[0]["rule"] == "no_progress#3"
        assert [a["rule"] for a in reg.alerts] == [
            "no_progress", "no_progress#2", "no_progress#3",
        ]

    def test_watchdog_rearm_spans_recovered_then_restalled_runs(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        dog = NoProgressWatchdog(stall_seconds=5.0, rearm_after=10.0)
        clk.advance(6.0)
        assert len(evaluate_alerts(reg, watchdog=dog)) == 1
        # Recovery: progress clears the stall, nothing fires.
        reg.mark_progress()
        assert evaluate_alerts(reg, watchdog=dog) == []
        # A second, distinct stall past the rearm window is a new alert.
        clk.advance(11.0)
        fired = evaluate_alerts(reg, watchdog=dog)
        assert len(fired) == 1 and fired[0]["rule"] == "no_progress#2"


# ----------------------------------------------------------------------
# Sinks, heartbeat, reporter
# ----------------------------------------------------------------------


def _sample_registry() -> MetricsRegistry:
    clk = FakeClock()
    reg = MetricsRegistry(clock=clk)
    reg.inc("repro_gemm_calls_total", 3.0, op="gemm")
    reg.set("repro_progress_fraction", 0.25, phase="total")
    reg.set("repro_eta_seconds", 12.0, phase="total")
    for v in (1e-4, 2e-4, 3e-4):
        reg.observe("repro_gemm_latency_seconds", v, op="gemm")
    clk.advance(1.5)
    return reg


class TestPrometheus:
    def test_render_parse_round_trip(self):
        text = render_prometheus(_sample_registry().snapshot())
        series = parse_prometheus(text)
        assert series['repro_gemm_calls_total{op="gemm"}'] == 3.0
        assert series['repro_gemm_latency_seconds_count{op="gemm"}'] == 3.0
        assert series['repro_gemm_latency_seconds{op="gemm",quantile="0.5"}'] \
            == pytest.approx(2e-4, rel=0.05)
        assert series["repro_uptime_seconds"] == pytest.approx(1.5)
        assert "# TYPE repro_gemm_latency_seconds summary" in text

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("this is { not exposition\n")

    def test_sink_writes_atomic_file(self, tmp_path):
        path = tmp_path / "live" / "metrics.prom"
        PrometheusSink(path).emit(_sample_registry().snapshot())
        assert parse_prometheus(path.read_text())


class TestJsonlStream:
    def test_stream_validates(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sink = JsonlSink(path)
        reg = _sample_registry()
        sink.emit(reg.snapshot())
        reg.clock.advance(1.0)
        sink.emit(reg.snapshot())
        samples = validate_metrics_stream(path)
        assert len(samples) == 2
        assert samples[1]["uptime"] > samples[0]["uptime"]
        assert samples[0]["counters"]['repro_gemm_calls_total{op="gemm"}'] == 3.0
        assert "quantiles" in samples[0]

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        JsonlSink(path).emit(_sample_registry().snapshot())
        with open(path, "a") as fh:
            fh.write('{"uptime": 99.0, "phase"')  # crashed writer
        assert len(validate_metrics_stream(path)) == 1

    def test_torn_middle_line_rejected(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sink = JsonlSink(path)
        sink.emit(_sample_registry().snapshot())
        with open(path, "a") as fh:
            fh.write("garbage\n")
        sink.emit(_sample_registry().snapshot())
        with pytest.raises(ValueError, match="malformed"):
            validate_metrics_stream(path)

    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text('{"uptime": 1.0}\n{"uptime": 2.0}\n')
        with pytest.raises(ValueError, match="phase"):
            validate_metrics_stream(path)

    def test_non_monotone_uptime_rejected(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        base = {"phase": "", "counters": {}, "gauges": {}, "quantiles": {}}
        with open(path, "w") as fh:
            fh.write(json.dumps({"uptime": 2.0, **base}) + "\n")
            fh.write(json.dumps({"uptime": 1.0, **base}) + "\n")
        with pytest.raises(ValueError, match="monotone"):
            validate_metrics_stream(path)


class TestTtySink:
    def test_renders_progress_line(self):
        buf = io.StringIO()
        sink = TtySink(stream=buf)
        sink.emit(_sample_registry().snapshot())
        sink.close()
        out = buf.getvalue()
        assert "\r" in out and "25.0%" in out and "eta=12.0s" in out
        assert out.endswith("\n")

    def test_closed_stream_does_not_raise(self):
        buf = io.StringIO()
        buf.close()
        sink = TtySink(stream=buf)
        sink.emit(_sample_registry().snapshot())  # must not raise
        sink.close()


class TestHeartbeat:
    def test_beat_round_trip(self, tmp_path):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        reg.span_started("syevd", 0)
        reg.span_started("syevd/sbr", 1)
        hb = Heartbeat(tmp_path / "heartbeat.json", wall_clock=lambda: 1234.5)
        payload = hb.beat(reg)
        assert payload["beats"] == 1
        assert payload["phase"] == "sbr"
        assert payload["pid"] == os.getpid()
        clk.advance(1.0)
        hb.beat(reg)
        back = read_heartbeat(tmp_path / "heartbeat.json")
        assert back["beats"] == 2
        assert back["updated"] == 1234.5

    def test_read_absent_returns_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "nope.json") is None

    def test_read_torn_write_returns_none(self, tmp_path):
        # A reader racing a non-atomic writer can observe a prefix of
        # the JSON document; the contract is None, never an exception.
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        path = tmp_path / "heartbeat.json"
        Heartbeat(path, wall_clock=lambda: 1.0).beat(reg)
        whole = path.read_text(encoding="utf-8").rstrip()
        assert whole.endswith("}")
        for cut in (1, len(whole) // 2, len(whole) - 1):
            path.write_text(whole[:cut], encoding="utf-8")
            assert read_heartbeat(path) is None

    def test_read_empty_and_garbage_return_none(self, tmp_path):
        path = tmp_path / "heartbeat.json"
        path.write_text("", encoding="utf-8")
        assert read_heartbeat(path) is None
        path.write_text("not json {{{", encoding="utf-8")
        assert read_heartbeat(path) is None
        # Binary junk (e.g. a page of zeros after a crashed writer).
        path.write_bytes(b"\x00" * 64)
        assert read_heartbeat(path) is None

    def test_read_unreadable_returns_none(self, tmp_path):
        # A directory where the file should be is an OSError on open.
        path = tmp_path / "heartbeat.json"
        path.mkdir()
        assert read_heartbeat(path) is None

    def test_beat_includes_progress_when_estimator(self, tmp_path):
        reg = MetricsRegistry(clock=FakeClock())
        est = ProgressEstimator({"sbr": 100.0})
        est.attach(reg)
        est.on_phase_start("sbr", 0.0)
        est.on_work("sbr", 50.0, 1.0)
        payload = Heartbeat(tmp_path / "hb.json").beat(reg, est)
        assert payload["progress"] == pytest.approx(0.5)
        assert payload["phases"]["sbr"]["fraction"] == pytest.approx(0.5)


class TestReporter:
    def test_tick_publishes_everywhere(self, tmp_path):
        reg = _sample_registry()
        prom = PrometheusSink(tmp_path / "m.prom")
        jsonl = JsonlSink(tmp_path / "m.jsonl")
        hb = Heartbeat(tmp_path / "hb.json")
        rep = Reporter(reg, interval=60.0, sinks=[prom, jsonl], heartbeat=hb)
        rep.tick()
        rep.tick()
        assert rep.ticks == 2
        assert hb.beats == 2
        assert parse_prometheus((tmp_path / "m.prom").read_text())
        assert len(validate_metrics_stream(tmp_path / "m.jsonl")) == 2

    def test_sink_errors_swallowed(self):
        class Boom:
            def emit(self, snapshot):
                raise OSError("disk full")

        rep = Reporter(_sample_registry(), sinks=[Boom()])
        rep.tick()  # must not raise
        assert rep.errors and "disk full" in rep.errors[0]

    def test_background_thread_ticks(self, tmp_path):
        import time

        reg = MetricsRegistry()
        rep = Reporter(reg, interval=0.01,
                       sinks=[PrometheusSink(tmp_path / "m.prom")])
        with rep:
            deadline = time.monotonic() + 5.0
            while rep.ticks < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert rep.ticks >= 2  # thread ticked, plus the final stop tick

    def test_stop_runs_final_tick(self, tmp_path):
        reg = MetricsRegistry()
        rep = Reporter(reg, interval=999.0,
                       sinks=[PrometheusSink(tmp_path / "m.prom")])
        rep.start()
        reg.inc("repro_late_total")
        rep.stop(final_tick=True)
        series = parse_prometheus((tmp_path / "m.prom").read_text())
        assert series["repro_late_total"] == 1.0


# ----------------------------------------------------------------------
# Live session + driver integration
# ----------------------------------------------------------------------


class TestResolveLive:
    def test_off_values(self):
        for off in (None, False):
            sess = resolve_live(off)
            with sess:
                pass
            assert sess.dump is None

    def test_registry_mode_has_no_reporter_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        reg = MetricsRegistry()
        sess = resolve_live(reg)
        with sess:
            assert live_registry.active_registry() is reg
        assert sess.dump is not None
        assert not os.path.exists(os.path.join("runs", "live"))

    def test_path_and_config(self, tmp_path):
        sess = resolve_live(str(tmp_path / "lv"))
        assert isinstance(sess, LiveSession)
        assert sess.config.dir == str(tmp_path / "lv")
        sess2 = resolve_live(LiveConfig(dir="x", interval=0.5))
        assert sess2.config.interval == 0.5

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_live(42)


class TestDriverIntegration:
    @pytest.fixture
    def live_run(self, tmp_path, rng):
        from repro.eig.driver import syevd_2stage

        d = str(tmp_path / "live")
        a = random_symmetric(96, rng)
        res = syevd_2stage(
            a, b=8, nb=32, live=LiveConfig(dir=d, interval=0.02)
        )
        return d, res

    def test_live_run_produces_metrics_dump(self, live_run):
        _, res = live_run
        assert res.metrics is not None
        names = {h["name"] for h in res.metrics["histograms"]}
        assert "repro_gemm_latency_seconds" in names
        assert "repro_phase_seconds" in names
        assert res.metrics["progress"]["fraction"] == pytest.approx(1.0)
        assert json.dumps(res.metrics)

    def test_live_run_prometheus_snapshot(self, live_run):
        d, _ = live_run
        with open(os.path.join(d, "metrics.prom")) as fh:
            series = parse_prometheus(fh.read())
        for q in ("0.5", "0.99"):
            assert any(
                k.startswith("repro_gemm_latency_seconds{")
                and f'quantile="{q}"' in k
                for k in series
            )
        assert series['repro_progress_fraction{phase="total"}'] == 1.0
        for phase in ("sbr", "bulge", "tridiag_solve", "back_transform"):
            assert series[f'repro_progress_fraction{{phase="{phase}"}}'] == 1.0

    def test_live_run_heartbeat_and_stream(self, live_run):
        d, _ = live_run
        hb = read_heartbeat(os.path.join(d, "heartbeat.json"))
        assert hb is not None and hb["beats"] >= 1
        samples = validate_metrics_stream(os.path.join(d, "metrics.jsonl"))
        assert samples  # at least the final tick

    def test_metrics_registry_only_mode(self, rng):
        from repro.eig.driver import syevd_2stage

        reg = MetricsRegistry()
        a = random_symmetric(64, rng)
        res = syevd_2stage(a, b=8, nb=16, metrics=reg)
        assert res.metrics is None  # caller owns the registry
        assert reg.counter_total("repro_gemm_calls_total") > 0
        assert reg.counter_total("repro_ws_takes_total") > 0
        assert reg.histogram_merged("repro_phase_seconds").count >= 4
        assert live_registry.active_registry() is None  # uninstalled

    def test_default_run_leaves_registry_off(self, rng):
        from repro.eig.driver import syevd_2stage

        a = random_symmetric(48, rng)
        res = syevd_2stage(a, b=8, nb=16)
        assert res.metrics is None
        assert live_registry.active_registry() is None

    def test_sbr_metrics_knob(self, rng):
        from repro.sbr.wy import sbr_wy
        from repro.sbr.zy import sbr_zy

        a = random_symmetric(64, rng)
        for fn, args in ((sbr_wy, (a, 8, 16)), (sbr_zy, (a, 8))):
            reg = MetricsRegistry()
            fn(*args, want_q=False, metrics=reg)
            assert reg.counter_total("repro_gemm_calls_total") > 0

    def test_solver_iteration_hooks(self, rng):
        from repro.eig.lobpcg import lobpcg
        from repro.eig.qliter import tridiag_eig_ql

        reg = MetricsRegistry()
        d = np.arange(1.0, 17.0)
        e = 0.1 * np.ones(15)
        tridiag_eig_ql(d, e, want_vectors=False, metrics=reg)
        assert reg.counter_value(
            "repro_solver_iterations_total", phase="ql_iteration") > 0

        reg2 = MetricsRegistry()
        a = random_symmetric(36, rng)
        lobpcg(a, 2, metrics=reg2, max_iter=30, tol=1e-6)
        assert reg2.counter_value(
            "repro_solver_iterations_total", phase="lobpcg") > 0
        assert reg2.gauge_value(
            "repro_solver_residual", phase="lobpcg") is not None


# ----------------------------------------------------------------------
# Manifest metrics line + report + CLI (satellites 4/5 code paths)
# ----------------------------------------------------------------------


class TestManifestMetricsLine:
    def test_write_load_round_trip(self, tmp_path):
        from repro.obs import load_manifest, write_manifest

        reg = _sample_registry()
        with obs.collect() as session:
            with obs.span("p"):
                pass
        path = write_manifest(
            session, str(tmp_path / "m.jsonl"), metrics=reg.dump()
        )
        man = load_manifest(path)
        assert man.metrics is not None
        assert man.metrics["counters"][0]["name"] == "repro_gemm_calls_total"
        assert man.metrics["alpha"] == 0.01

    def test_absent_metrics_is_none(self, tmp_path):
        from repro.obs import load_manifest, write_manifest

        with obs.collect() as session:
            with obs.span("p"):
                pass
        man = load_manifest(write_manifest(session, str(tmp_path / "m.jsonl")))
        assert man.metrics is None

    def test_schema_guard_still_rejects_newer(self, tmp_path):
        from repro.obs import load_manifest
        from repro.obs.manifest import SCHEMA_VERSION

        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps(
            {"kind": "meta", "schema": SCHEMA_VERSION + 1}
        ) + "\n" + json.dumps({"kind": "metrics", "counters": []}) + "\n")
        with pytest.raises(ValueError, match="newer"):
            load_manifest(str(path))

    def test_metrics_line_rides_schema_v2(self, tmp_path):
        # The metrics line is additive within schema v2: a v2 manifest
        # with a metrics line loads on a loader that knows v2.
        from repro.obs import load_manifest
        from repro.obs.manifest import SCHEMA_VERSION

        assert SCHEMA_VERSION == 2
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": 2, "label": "x",
                        "wall": 1.0}) + "\n"
            + json.dumps({"kind": "metrics", "uptime": 3.0,
                          "counters": [], "gauges": [],
                          "histograms": []}) + "\n"
        )
        man = load_manifest(str(path))
        assert man.metrics["uptime"] == 3.0

    def test_record_syevd_live_archives_metrics(self, tmp_path, rng):
        from repro.obs import load_manifest
        from repro.obs.record import record_syevd

        run = record_syevd(
            n=64, b=8, nb=16, probes=False,
            path=str(tmp_path / "run.jsonl"),
            live=LiveConfig(dir=str(tmp_path / "live"), interval=0.02),
        )
        man = load_manifest(run.path)
        assert man.metrics is not None
        assert any(
            h["name"] == "repro_gemm_latency_seconds"
            for h in man.metrics["histograms"]
        )

    def test_report_renders_live_metrics_section(self, tmp_path, rng):
        from repro.obs import load_manifest, render_report
        from repro.obs.record import record_syevd

        run = record_syevd(
            n=64, b=8, nb=16, probes=False,
            path=str(tmp_path / "run.jsonl"),
            live=LiveConfig(dir=str(tmp_path / "live"), interval=0.02),
        )
        text = render_report(load_manifest(run.path))
        assert "live metrics:" in text
        assert "repro_gemm_latency_seconds" in text
        assert "p99" in text
        assert "progress at run end:" in text


class TestCli:
    def test_live_subcommand_renders_directory(self, tmp_path, capsys, rng):
        from repro.eig.driver import syevd_2stage
        from repro.obs.__main__ import main

        d = str(tmp_path / "live")
        a = random_symmetric(64, rng)
        syevd_2stage(a, b=8, nb=16, live=LiveConfig(dir=d, interval=0.02))
        assert main(["live", d]) == 0
        out = capsys.readouterr().out
        assert "heartbeat: beat #" in out
        assert "repro_gemm_latency_seconds" in out

    def test_live_subcommand_absent_directory(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["live", str(tmp_path / "nowhere")]) == 0
        assert "(absent)" in capsys.readouterr().out


class TestBenchstoreLatency:
    def test_scenario_rows_carry_gemm_latency_quantiles(self):
        from repro.obs.analytics import run_suite
        from repro.obs.analytics.benchstore import BenchScenario

        session = run_suite(scenarios=(
            BenchScenario("tiny", n=32, b=4, nb=8),
        ), repeats=2)
        row = session["scenarios"][0]
        assert row["gemm_latency"] is not None
        assert row["gemm_latency"]["count"] > 0
        assert set(row["gemm_latency"]["quantiles"]) == {"0.5", "0.9", "0.99"}
        assert live_registry.active_registry() is None


class TestProgressAgeAndStalls:
    """Registry health accessors driving serve-layer admission control."""

    def test_progress_age_counts_from_last_progress(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        reg.mark_progress()
        clk.advance(7.5)
        assert reg.progress_age() == pytest.approx(7.5)
        reg.mark_progress()
        assert reg.progress_age() == pytest.approx(0.0)

    def test_stalled_workers_by_age(self):
        clk = FakeClock()
        reg = MetricsRegistry(clock=clk)
        reg.touch_worker("fast")
        clk.advance(10.0)
        reg.touch_worker("slow")  # touched now, fast is 10s stale
        assert reg.stalled_workers(5.0) == ["fast"]
        assert reg.stalled_workers(20.0) == []
