"""Smoke tests: every example script runs end to end.

Each example is imported as a module and its ``main`` driven at reduced
size where the script supports it, so the documented entry points stay
executable as the library evolves.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart",
        "pca_lowrank",
        "spectral_partition",
        "performance_exploration",
        "mixed_precision_refinement",
        "kernel_spectrum",
    } <= names


def test_quickstart_runs(capsys):
    mod = _load("quickstart")
    mod.main(96)
    out = capsys.readouterr().out
    assert "fp16_tc" in out and "fp64" in out


def test_pca_lowrank_runs(capsys, monkeypatch):
    mod = _load("pca_lowrank")
    monkeypatch.setattr(mod, "N_SAMPLES", 300)
    monkeypatch.setattr(mod, "N_FEATURES", 64)
    mod.main()
    out = capsys.readouterr().out
    assert "reconstruction error" in out


def test_spectral_partition_runs(capsys, monkeypatch):
    mod = _load("spectral_partition")
    monkeypatch.setattr(mod, "N_PER_SIDE", 32)
    mod.main()
    out = capsys.readouterr().out
    assert "partition accuracy" in out


def test_performance_exploration_runs(capsys):
    mod = _load("performance_exploration")
    mod.main()
    out = capsys.readouterr().out
    assert "crossover" in out and "syr2k" in out


def test_mixed_precision_refinement_runs(capsys, monkeypatch):
    mod = _load("mixed_precision_refinement")
    monkeypatch.setattr(mod, "N", 64)
    monkeypatch.setattr(mod, "CASES", mod.CASES[:1])
    mod.main()
    out = capsys.readouterr().out
    assert "sweeps=2" in out


def test_kernel_spectrum_runs(capsys, monkeypatch):
    mod = _load("kernel_spectrum")
    monkeypatch.setattr(mod, "N_POINTS", 96)
    monkeypatch.setattr(mod, "RANK", 8)
    mod.main()
    out = capsys.readouterr().out
    assert "kernel approximation error" in out
