"""Fidelity tests: symbolic shape traces vs the numeric drivers' records.

These are the load-bearing tests for the performance figures: every model
time in Figures 5–11 is computed from symbolic traces, which must equal —
shape for shape, tag for tag — what the numeric algorithms actually issue.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm import Fp64Engine
from repro.gemm.symbolic import (
    ALGORITHM_TAGS,
    is_algorithm_tag,
    trace_form_q,
    trace_sbr_wy,
    trace_sbr_zy,
)
from repro.sbr import sbr_wy, sbr_zy
from tests.conftest import random_symmetric


def _recorded_algorithm_trace(engine):
    return engine.trace.filter(lambda r: is_algorithm_tag(r.tag))


class TestZyTraceFidelity:
    @pytest.mark.parametrize("n,b", [(64, 8), (96, 16), (100, 8), (63, 8), (40, 40)])
    @pytest.mark.parametrize("want_q", [False, True])
    def test_matches_recorded(self, rng, n, b, want_q):
        a = random_symmetric(n, rng)
        eng = Fp64Engine(record=True)
        sbr_zy(a, b, engine=eng, want_q=want_q)
        rec = _recorded_algorithm_trace(eng)
        sym = trace_sbr_zy(n, b, want_q=want_q)
        assert rec.shape_multiset_by_tag() == sym.shape_multiset_by_tag()

    def test_flops_match(self, rng):
        n, b = 80, 8
        a = random_symmetric(n, rng)
        eng = Fp64Engine(record=True)
        sbr_zy(a, b, engine=eng, want_q=False)
        assert _recorded_algorithm_trace(eng).total_flops == trace_sbr_zy(n, b, want_q=False).total_flops


class TestWyTraceFidelity:
    @pytest.mark.parametrize(
        "n,b,nb",
        [
            (64, 8, 16),
            (96, 8, 32),
            (128, 16, 64),
            (100, 8, 32),   # non-divisible tail
            (63, 8, 24),    # odd size
            (96, 16, 96),   # nb spanning most of the matrix
            (48, 8, 8),     # nb == b degenerate
        ],
    )
    @pytest.mark.parametrize("want_q", [False, True])
    def test_matches_recorded(self, rng, n, b, nb, want_q):
        a = random_symmetric(n, rng)
        eng = Fp64Engine(record=True)
        sbr_wy(a, b, nb, engine=eng, want_q=want_q, panel="blocked_qr")
        rec = _recorded_algorithm_trace(eng)
        sym = trace_sbr_wy(n, b, nb, want_q=want_q, mirror=True)
        assert rec.shape_multiset_by_tag() == sym.shape_multiset_by_tag()

    def test_forward_q_method(self, rng):
        n, b, nb = 64, 8, 32
        a = random_symmetric(n, rng)
        eng = Fp64Engine(record=True)
        sbr_wy(a, b, nb, engine=eng, want_q=True, q_method="forward", panel="blocked_qr")
        rec = _recorded_algorithm_trace(eng)
        sym = trace_sbr_wy(n, b, nb, want_q=True, q_method="forward", mirror=True)
        assert rec.shape_multiset_by_tag() == sym.shape_multiset_by_tag()


class TestTraceStructure:
    def test_zy_tags(self):
        tags = set(trace_sbr_zy(128, 16).tags())
        assert {"zy_aw", "zy_wtaw", "zy_z", "zy_zyt", "zy_yzt"} <= tags

    def test_wy_tags(self):
        tags = set(trace_sbr_wy(256, 16, 64).tags())
        assert {"wy_oaw", "wy_right", "wy_left", "wy_full_right", "wy_full_left", "form_w"} <= tags

    def test_wy_inner_dims_grow_with_nb(self):
        # The whole point of Algorithm 1: the full-update contraction
        # dimension equals nb, not b.
        for nb in (32, 64, 128):
            tr = trace_sbr_wy(512, 16, nb, want_q=False)
            fulls = tr.by_tag("wy_full_right")
            assert all(r.k == nb for r in fulls[: len(fulls) - 1])

    def test_zy_inner_dims_fixed_at_b(self):
        tr = trace_sbr_zy(512, 16, want_q=False)
        for r in tr.by_tag("zy_zyt"):
            assert r.k <= 16

    def test_algorithm_tags_frozen(self):
        assert "zy_aw" in ALGORITHM_TAGS
        assert not is_algorithm_tag("panel_tsqr")
        assert not is_algorithm_tag("qr_trailing")

    def test_trace_form_q_methods_flop_ordering(self):
        blocks = [(16, 16), (32, 16), (48, 16), (64, 16)]
        tree = trace_form_q(128, blocks, method="tree")
        fwd = trace_form_q(128, blocks, method="forward")
        assert tree.total_flops > 0 and fwd.total_flops > 0

    def test_trace_form_q_empty(self):
        assert len(trace_form_q(64, [])) == 0

    def test_trace_form_q_bad_method(self):
        with pytest.raises(ConfigurationError):
            trace_form_q(64, [(8, 8)], method="sideways")

    def test_invalid_blocksizes(self):
        with pytest.raises(Exception):
            trace_sbr_wy(64, 8, 20)  # nb not multiple of b

    def test_wy_flops_exceed_zy_flops(self):
        n, b = 2048, 32
        assert trace_sbr_wy(n, b, 256, want_q=False).total_flops > trace_sbr_zy(n, b, want_q=False).total_flops


class TestWavefrontTraceFidelity:
    """The stage-2 wavefront launch schedule, pinned record for record.

    Stronger than the SBR multiset checks: the wavefront executor's
    engine stream must equal the symbolic trace *in order* — same
    shapes, tags, ops, and batch counts — because the batched launch
    schedule (who rides in which anti-diagonal group) is itself the
    artifact under test.
    """

    @pytest.mark.parametrize(
        "n,b", [(24, 3), (40, 5), (33, 7), (12, 11), (65, 16)]
    )
    @pytest.mark.parametrize("want_q", [False, True])
    def test_schedule_matches_recorded(self, rng, n, b, want_q):
        from repro.eig.bulge_wavefront import bulge_chase_wavefront
        from repro.gemm.symbolic import trace_bulge_wavefront
        from repro.la import extract_band

        ab = extract_band(random_symmetric(n, rng), b)
        eng = Fp64Engine(record=True)
        bulge_chase_wavefront(ab, b, want_q=want_q, engine=eng)
        rec = [
            (r.m, r.n, r.k, r.tag, r.op, r.batch)
            for r in _recorded_algorithm_trace(eng).records
        ]
        sym = [
            (r.m, r.n, r.k, r.tag, r.op, r.batch)
            for r in trace_bulge_wavefront(n, b, want_q=want_q).records
        ]
        assert rec == sym

    def test_flops_match(self, rng):
        from repro.eig.bulge_wavefront import bulge_chase_wavefront
        from repro.gemm.symbolic import trace_bulge_wavefront
        from repro.la import extract_band

        n, b = 48, 6
        ab = extract_band(random_symmetric(n, rng), b)
        eng = Fp64Engine(record=True)
        bulge_chase_wavefront(ab, b, engine=eng)
        assert (
            _recorded_algorithm_trace(eng).total_flops
            == trace_bulge_wavefront(n, b, want_q=True).total_flops
        )

    def test_bulge_svd_tags_registered(self):
        from repro.gemm.symbolic import BULGE_SVD_TAGS

        assert all(is_algorithm_tag(t) for t in BULGE_SVD_TAGS)
        assert all(is_algorithm_tag(t) for t in
                   ("bulge.wavefront.strip", "bulge.wavefront.syr2k"))
