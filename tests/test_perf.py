"""Performance layer: workspace arena, out=/batched engine API, mirrors.

Covers PR 5's contracts:

- :class:`repro.perf.Workspace` reuse/accounting semantics (thread-keyed
  buffers, capacity reuse, the :class:`NullWorkspace` control);
- the engine calling convention — ``out=`` (including aliasing safety),
  ``ta``/``tb`` transpose flags, ``gemm_batched`` exactness vs a looped
  ``gemm`` per precision mode, fused ``syr2k``;
- the symmetry-mirrored block-boundary update (exact symmetry, full
  two-sided accuracy);
- bitwise identity of the threaded paths (TSQR leaves, look-ahead
  overlap) with the serial schedule;
- the ``alloc`` manifest line round-trip.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.gemm.engine import (
    EcTensorCoreEngine,
    Fp64Engine,
    PlainEngine,
    SgemmEngine,
    TensorCoreEngine,
    make_engine,
)
from repro.errors import ShapeError
from repro.la import tsqr
from repro.perf import NullWorkspace, Workspace, resolve_workspace
from repro.sbr import sbr_wy, sbr_zy
from repro.sbr.panel import TsqrPanel
from tests.conftest import random_symmetric

ENGINE_FACTORIES = [
    pytest.param(PlainEngine, id="plain"),
    pytest.param(SgemmEngine, id="sgemm"),
    pytest.param(Fp64Engine, id="fp64"),
    pytest.param(TensorCoreEngine, id="tc-fp16"),
    pytest.param(lambda **kw: TensorCoreEngine(operand_format="tf32", **kw), id="tc-tf32"),
    pytest.param(EcTensorCoreEngine, id="ectc"),
]


def _operands(rng, m=24, k=16, n=12, dtype=np.float32):
    a = rng.standard_normal((m, k)).astype(dtype)
    b = rng.standard_normal((k, n)).astype(dtype)
    return a, b


class TestWorkspace:
    def test_take_reuses_backing_buffer(self):
        ws = Workspace()
        a = ws.take("t", (4, 3))
        b = ws.take("t", (4, 3))
        assert np.shares_memory(a, b)
        assert ws.hits == 1 and ws.misses == 1

    def test_capacity_reuse_for_smaller_takes(self):
        ws = Workspace()
        big = ws.take("t", (8, 8))
        small = ws.take("t", (4, 4))
        assert np.shares_memory(big, small)
        assert small.shape == (4, 4)
        assert ws.misses == 1 and ws.hits == 1

    def test_growth_reallocates(self):
        ws = Workspace()
        ws.take("t", (4, 4))
        ws.take("t", (8, 8))
        assert ws.misses == 2

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        ws.take("t", (4,), np.float32)
        ws.take("t", (4,), np.float64)
        assert ws.misses == 2

    def test_distinct_tags_distinct_buffers(self):
        ws = Workspace()
        a = ws.take("a", (4,))
        b = ws.take("b", (4,))
        assert not np.shares_memory(a, b)

    def test_zero_size_take(self):
        ws = Workspace()
        out = ws.take("t", (0, 5))
        assert out.shape == (0, 5)

    def test_thread_keyed_buffers(self):
        ws = Workspace()
        main_buf = ws.take("t", (16,))
        other: list[np.ndarray] = []
        th = threading.Thread(target=lambda: other.append(ws.take("t", (16,))))
        th.start()
        th.join()
        assert not np.shares_memory(main_buf, other[0])

    def test_stats_by_tag(self):
        ws = Workspace()
        ws.take("x", (4,))
        ws.take("x", (4,))
        ws.take("y", (2, 2), np.float64)
        st = ws.stats()
        assert st["arena"] is True
        assert st["takes"] == 3 and st["hits"] == 1 and st["misses"] == 2
        assert st["by_tag"]["x"]["hits"] == 1
        assert st["by_tag"]["y"]["bytes_allocated"] == 32

    def test_null_workspace_always_allocates(self):
        ws = NullWorkspace()
        a = ws.take("t", (4,))
        b = ws.take("t", (4,))
        assert not np.shares_memory(a, b)
        assert ws.hits == 0 and ws.misses == 2
        assert ws.stats()["arena"] is False

    def test_resolve_workspace(self):
        ws = Workspace()
        assert resolve_workspace(ws) is ws
        assert type(resolve_workspace(None)) is Workspace
        assert type(resolve_workspace(True)) is Workspace
        assert type(resolve_workspace(False)) is NullWorkspace
        with pytest.raises(TypeError):
            resolve_workspace("yes")


class TestEngineOut:
    @pytest.mark.parametrize("factory", ENGINE_FACTORIES)
    def test_out_is_written_and_returned(self, rng, factory):
        eng = factory()
        a, b = _operands(rng)
        ref = eng.gemm(a, b)
        out = np.empty_like(ref)
        res = eng.gemm(a, b, out=out)
        assert res is out
        assert np.array_equal(res, ref)

    @pytest.mark.parametrize("factory", ENGINE_FACTORIES)
    def test_out_aliasing_an_operand_is_safe(self, rng, factory):
        eng = factory()
        a0 = rng.standard_normal((16, 16)).astype(np.float32)
        b = rng.standard_normal((16, 16)).astype(np.float32)
        ref = eng.gemm(a0, b)
        a = a0.astype(ref.dtype)  # aliasable buffer in the result dtype
        res = eng.gemm(a, b, out=a)
        assert res is a
        assert np.array_equal(res, ref)

    def test_out_view_overlap_is_safe(self, rng):
        # out= being a *view into* an operand (not the operand itself)
        # must also route through the temporary.
        eng = SgemmEngine()
        buf = rng.standard_normal((20, 16)).astype(np.float32)
        a = buf[:16, :]
        ref = eng.gemm(a.copy(), a.copy(), out=None)
        res = eng.gemm(a, a, out=buf[4:, :])
        assert np.array_equal(res, ref)

    def test_out_shape_mismatch_raises(self, rng):
        eng = SgemmEngine()
        a, b = _operands(rng)
        with pytest.raises(ShapeError):
            eng.gemm(a, b, out=np.empty((3, 3), dtype=np.float32))
        with pytest.raises(ShapeError):
            eng.gemm(a, b, out=[[0.0]])

    @pytest.mark.parametrize("factory", ENGINE_FACTORIES)
    def test_transpose_flags(self, rng, factory):
        # ta/tb pass no-copy views; the numbers must match multiplying the
        # materialized transpose (tolerance: BLAS may pick a different
        # kernel for strided operands).
        eng = factory()
        a, b = _operands(rng)
        at = rng.standard_normal((16, 24)).astype(np.float32)  # a.T shape
        bt = rng.standard_normal((12, 16)).astype(np.float32)  # b.T shape
        np.testing.assert_allclose(
            eng.gemm(at, b, ta=True),
            eng.gemm(np.ascontiguousarray(at.T), b),
            rtol=2e-6, atol=2e-6,
        )
        np.testing.assert_allclose(
            eng.gemm(a, bt, tb=True),
            eng.gemm(a, np.ascontiguousarray(bt.T)),
            rtol=2e-6, atol=2e-6,
        )

    def test_transpose_flags_shape_validation(self, rng):
        eng = PlainEngine()
        a, b = _operands(rng)
        with pytest.raises(ShapeError):
            eng.gemm(a, b, ta=True)  # (16, 24) @ (16, 12) mismatch

    def test_trace_records_logical_shapes(self, rng):
        eng = PlainEngine(record=True)
        a, b = _operands(rng, m=24, k=16, n=12)
        at = np.ascontiguousarray(a.T)
        eng.gemm(at, b, ta=True, tag="t")
        rec = eng.trace[-1]
        assert (rec.m, rec.n, rec.k) == (24, 12, 16)


class TestGemmBatched:
    @pytest.mark.parametrize("factory", ENGINE_FACTORIES)
    def test_matches_looped_gemm_exactly(self, rng, factory):
        eng = factory()
        sa = rng.standard_normal((4, 12, 8)).astype(np.float32)
        sb = rng.standard_normal((4, 8, 10)).astype(np.float32)
        res = eng.gemm_batched(sa, sb, tag="batch")
        assert res.shape == (4, 12, 10)
        for i in range(4):
            assert np.array_equal(res[i], eng.gemm(sa[i], sb[i], tag="loop"))

    def test_batched_out_and_transpose(self, rng):
        eng = SgemmEngine()
        sa = rng.standard_normal((3, 8, 12)).astype(np.float32)
        sb = rng.standard_normal((3, 8, 10)).astype(np.float32)
        ref = eng.gemm_batched(np.ascontiguousarray(sa.swapaxes(-2, -1)), sb)
        out = np.empty_like(ref)
        res = eng.gemm_batched(sa, sb, ta=True, out=out)
        assert res is out
        np.testing.assert_allclose(res, ref, rtol=2e-6, atol=2e-6)

    def test_batched_record(self, rng):
        eng = SgemmEngine(record=True)
        sa = rng.standard_normal((5, 6, 4)).astype(np.float32)
        sb = rng.standard_normal((5, 4, 3)).astype(np.float32)
        eng.gemm_batched(sa, sb, tag="b")
        rec = eng.trace[-1]
        assert rec.op == "gemm_batched" and rec.batch == 5
        assert (rec.m, rec.n, rec.k) == (6, 3, 4)

    def test_batched_rejects_2d(self, rng):
        eng = SgemmEngine()
        a, b = _operands(rng)
        with pytest.raises(ShapeError):
            eng.gemm_batched(a, b)


class TestSyr2k:
    def test_fused_update_matches_subtraction_bitwise(self, rng):
        eng = SgemmEngine()
        c0 = random_symmetric(16, rng, dtype=np.float32)
        z = rng.standard_normal((16, 4)).astype(np.float32)
        y = rng.standard_normal((16, 4)).astype(np.float32)
        ref = c0 - eng.syr2k(z, y, tag="ref")
        c = c0.copy()
        res = eng.syr2k(z, y, tag="fused", out=c, alpha=-1.0, beta=1.0)
        assert res is c
        assert np.array_equal(res, ref)

    def test_beta_zero_writes_out(self, rng):
        eng = SgemmEngine()
        z = rng.standard_normal((8, 3)).astype(np.float32)
        y = rng.standard_normal((8, 3)).astype(np.float32)
        out = np.full((8, 8), np.nan, dtype=np.float32)
        res = eng.syr2k(z, y, out=out)
        assert res is out
        assert np.array_equal(out, eng.syr2k(z, y))

    def test_output_exactly_symmetric(self, rng):
        eng = SgemmEngine()
        z = rng.standard_normal((10, 4)).astype(np.float32)
        y = rng.standard_normal((10, 4)).astype(np.float32)
        s = eng.syr2k(z, y)
        assert np.array_equal(s, s.T)

    def test_beta_without_out_raises(self, rng):
        eng = SgemmEngine()
        z = rng.standard_normal((8, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            eng.syr2k(z, z, beta=1.0)


class TestMirroredUpdate:
    """The lower-triangle + mirror block-boundary update (tentpole 3)."""

    def test_band_exactly_symmetric(self, rng):
        a = random_symmetric(96, rng)
        res = sbr_wy(a, 8, 32, engine=Fp64Engine(), want_q=False)
        assert np.array_equal(res.band, res.band.T)

    def test_mirrored_equals_full_two_sided_update(self, rng):
        # Q^T A Q reconstructed from the returned transform must match the
        # band to fp64 roundoff — the mirror writes the same numbers the
        # full two-sided update would have produced.
        n = 96
        a = random_symmetric(n, rng)
        res = sbr_wy(a, 8, 32, engine=Fp64Engine(), want_q=True)
        resid = res.q.T @ a @ res.q - res.band
        assert np.linalg.norm(resid) <= 1e-12 * np.linalg.norm(a)

    def test_zy_fused_trailing_update(self, rng):
        a = random_symmetric(64, rng)
        res = sbr_zy(a, 8, engine=Fp64Engine(), want_q=True)
        assert np.array_equal(res.band, res.band.T)
        resid = res.q.T @ a @ res.q - res.band
        assert np.linalg.norm(resid) <= 1e-12 * np.linalg.norm(a)


class TestBitwiseThreading:
    def test_tsqr_threaded_leaves_bitwise_identical(self, rng):
        a = rng.standard_normal((512, 16)).astype(np.float32)
        q0, r0 = tsqr(a, leaf_rows=64)
        q1, r1 = tsqr(a, leaf_rows=64, max_threads=4)
        assert np.array_equal(q0, q1)
        assert np.array_equal(r0, r1)

    @pytest.mark.parametrize("precision", ["fp32", "fp16_ec_tc"])
    def test_lookahead_bitwise_identical_to_serial(self, rng, precision):
        a = random_symmetric(128, rng)
        serial = sbr_wy(a, 8, 32, engine=make_engine(precision), want_q=True)
        overlap = sbr_wy(
            a, 8, 32, engine=make_engine(precision), want_q=True, lookahead=True
        )
        assert np.array_equal(serial.band, overlap.band)
        assert np.array_equal(serial.q, overlap.q)

    def test_threaded_panel_bitwise_identical(self, rng):
        # Pin leaf_rows: max_threads>1 otherwise also switches the leaf
        # default, which is a (valid) different decomposition.
        a = random_symmetric(128, rng)
        serial = sbr_wy(
            a, 8, 32, engine=SgemmEngine(), want_q=True,
            panel=TsqrPanel(leaf_rows=32),
        )
        threaded = sbr_wy(
            a, 8, 32, engine=SgemmEngine(), want_q=True,
            panel=TsqrPanel(leaf_rows=32, max_threads=4),
        )
        assert np.array_equal(serial.band, threaded.band)
        assert np.array_equal(serial.q, threaded.q)


class TestWorkspaceInDrivers:
    @pytest.mark.parametrize("precision", ["fp32", "fp16_ec_tc"])
    def test_steady_state_is_allocation_free(self, rng, precision):
        ws = Workspace()
        a = random_symmetric(256, rng)
        sbr_wy(a, 8, 32, engine=make_engine(precision), want_q=False, workspace=ws)
        # Acceptance: >= 10x fewer hot-loop allocations than takes.
        assert ws.misses * 10 <= ws.hits + ws.misses
        assert ws.hits > 0

    def test_null_workspace_counts_every_take(self, rng):
        on, off = Workspace(), NullWorkspace()
        a = random_symmetric(96, rng)
        sbr_wy(a, 8, 32, engine=make_engine("fp32"), want_q=False, workspace=on)
        sbr_wy(a, 8, 32, engine=make_engine("fp32"), want_q=False, workspace=off)
        assert off.hits == 0
        assert off.misses == on.hits + on.misses  # identical take stream
        assert off.bytes_allocated > on.bytes_allocated

    def test_workspace_off_identical_result(self, rng):
        a = random_symmetric(96, rng)
        r_on = sbr_wy(a, 8, 32, engine=make_engine("fp32"), want_q=False)
        r_off = sbr_wy(
            a, 8, 32, engine=make_engine("fp32"), want_q=False, workspace=False
        )
        assert np.array_equal(r_on.band, r_off.band)

    def test_result_carries_workspace(self, rng):
        from repro.eig.driver import syevd_2stage

        a = random_symmetric(64, rng)
        res = syevd_2stage(a, b=8, nb=16, want_vectors=False)
        assert res.workspace is not None
        assert res.workspace.stats()["takes"] > 0


class TestAllocManifest:
    def test_alloc_line_round_trip(self, rng, tmp_path):
        from repro.obs import load_manifest, record_syevd

        path = str(tmp_path / "run.jsonl")
        run = record_syevd(
            n=64, b=8, nb=16, want_vectors=False, probes=False, path=path
        )
        man = load_manifest(run.path)
        assert man.alloc is not None
        assert man.alloc["takes"] == man.alloc["hits"] + man.alloc["misses"]
        assert man.alloc["arena"] is True
        assert "by_tag" in man.alloc


class TestPreparedOperand:
    def test_ec_prepared_gemm_bitwise_identical(self, rng):
        eng = make_engine("fp16_ec_tc")
        a, b = _operands(rng, m=48, k=48, n=8)
        ref = eng.gemm(a, b, tag="t")
        handle = eng.prepare_operand(a, tag="oa")
        assert np.array_equal(eng.gemm(handle, b, tag="t"), ref)
        # Works on either side, and with out=.
        c = rng.standard_normal((8, 48)).astype(np.float32)
        assert np.array_equal(
            eng.gemm(c, eng.prepare_operand(a)), eng.gemm(c, a)
        )
        out = np.empty_like(ref)
        res = eng.gemm(handle, b, out=out)
        assert res is out and np.array_equal(out, ref)

    def test_prepare_amortizes_split_through_workspace(self, rng):
        ws = Workspace()
        eng = make_engine("fp16_ec_tc", workspace=ws)
        a, b = _operands(rng, m=32, k=32, n=4)
        handle = eng.prepare_operand(a, tag="oa")
        before = ws.misses
        eng.gemm(handle, b)
        eng.gemm(handle, b)
        # The second call allocates nothing new: the a-side split is the
        # handle's, and the b-side/correction scratch is reused.
        assert ws.misses > before  # first call allocated b-split scratch
        first = ws.misses
        eng.gemm(handle, b)
        assert ws.misses == first

    @pytest.mark.parametrize("precision", ["fp32", "fp64", "fp16_tc"])
    def test_default_prepare_is_passthrough(self, rng, precision):
        eng = make_engine(precision)
        a, b = _operands(rng)
        prepared = eng.prepare_operand(a)
        assert prepared is a
        assert np.array_equal(eng.gemm(prepared, b), eng.gemm(a, b))

    def test_prepared_operand_rejects_transpose(self, rng):
        eng = make_engine("fp16_ec_tc")
        a, _ = _operands(rng, m=16, k=16, n=16)
        handle = eng.prepare_operand(a)
        with pytest.raises(ShapeError):
            eng.gemm(handle, a, ta=True)
        with pytest.raises(ShapeError):
            eng.gemm(a, handle, tb=True)


class TestEngineWorkspace:
    def test_ec_split_buffers_reused_across_calls(self, rng):
        ws = Workspace()
        eng = make_engine("fp16_ec_tc", workspace=ws)
        a, b = _operands(rng, m=32, k=32, n=32)
        ref = make_engine("fp16_ec_tc").gemm(a, b)
        r1 = eng.gemm(a, b)
        r2 = eng.gemm(a, b)
        assert np.array_equal(r1, ref)  # arena must not change numerics
        assert np.array_equal(r1, r2)
        assert ws.hits > 0  # second call reused the split scratch
