"""Tests for the wavefront bulge chase and its end-to-end wiring.

Covers the stage-2 tentpole: numerical correctness across edge
geometries for all three ``bulge_chase`` variants, the bitwise
batched-vs-serial contract, engine-tag visibility, steady-state
arena reuse, the driver's ``bulge_variant`` plumbing, and the
analytic stage-2 flop models behind ``phase_plan``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig import bulge_chase
from repro.eig.bulge_wavefront import bulge_chase_wavefront
from repro.errors import ShapeError, ValidationError
from repro.gemm import Fp64Engine
from repro.gemm.symbolic import BULGE_WAVEFRONT_TAGS, is_algorithm_tag
from repro.la import extract_band, tridiag_to_dense
from repro.perf import Workspace
from tests.conftest import random_symmetric

VARIANTS = ("givens", "blocked", "wavefront")

# Edge geometries: single sweep hop (b >= n-1), bandwidth 1 passthrough,
# n not a multiple of b, b > n/2, tiny matrices, and bulk shapes.
EDGE_GEOMETRIES = [
    (8, 2), (24, 3), (40, 5), (33, 7), (12, 11), (30, 1),
    (5, 4), (3, 2), (2, 1), (65, 16), (9, 8), (50, 2),
]


class TestWavefrontBulgeChase:
    @pytest.mark.parametrize("n,b", EDGE_GEOMETRIES)
    def test_similarity_and_orthogonality(self, rng, n, b):
        ab = extract_band(random_symmetric(n, rng), b)
        d, e, q = bulge_chase(ab, b, want_q=True, variant="wavefront")
        t = tridiag_to_dense(d, e)
        np.testing.assert_allclose(q @ t @ q.T, ab, atol=1e-12)
        np.testing.assert_allclose(q.T @ q, np.eye(n), atol=1e-12)

    @pytest.mark.parametrize("n,b", [(40, 5), (33, 7), (12, 11), (30, 1), (9, 8)])
    def test_all_variants_agree_on_spectrum(self, rng, n, b):
        ab = extract_band(random_symmetric(n, rng), b)
        spectra = []
        for variant in VARIANTS:
            d, e, _ = bulge_chase(ab, b, want_q=False, variant=variant)
            spectra.append(np.linalg.eigvalsh(tridiag_to_dense(d, e)))
        np.testing.assert_allclose(spectra[0], spectra[1], atol=1e-11)
        np.testing.assert_allclose(spectra[0], spectra[2], atol=1e-11)

    def test_batched_matches_serial_bitwise(self, rng):
        # The wavefront schedule's batched anti-diagonal execution must be
        # bit-identical to executing the same groups one step at a time:
        # np.matmul over a 3-D stack is defined as the per-slice product.
        ab = extract_band(random_symmetric(48, rng), 6)
        d1, e1, q1 = bulge_chase_wavefront(ab, 6, batch=True)
        d2, e2, q2 = bulge_chase_wavefront(ab, 6, batch=False)
        np.testing.assert_array_equal(d1, d2)
        np.testing.assert_array_equal(e1, e2)
        np.testing.assert_array_equal(q1, q2)

    def test_already_tridiagonal_dead_sweeps(self, rng):
        # Declared bandwidth larger than the true one: every sweep is dead
        # and Q must stay exactly the identity.
        t_in = extract_band(random_symmetric(20, rng), 1)
        d, e, q = bulge_chase(t_in, 5, want_q=True, variant="wavefront")
        np.testing.assert_array_equal(q, np.eye(20))
        np.testing.assert_allclose(
            q @ tridiag_to_dense(d, e) @ q.T, t_in, atol=1e-12
        )

    def test_no_q(self, rng):
        ab = extract_band(random_symmetric(24, rng), 4)
        _, _, q = bulge_chase(ab, 4, want_q=False, variant="wavefront")
        assert q is None

    def test_extreme_scales(self, rng):
        # The hoisted pre-scaling must keep reflectors finite across the
        # representable range.
        for scale in (1e300, 1e-300):
            ab = extract_band(random_symmetric(16, rng), 3) * scale
            d, e, q = bulge_chase(ab, 3, want_q=True, variant="wavefront")
            assert np.all(np.isfinite(d)) and np.all(np.isfinite(e))
            np.testing.assert_allclose(
                q @ tridiag_to_dense(d, e) @ q.T, ab, atol=1e-12 * scale
            )

    def test_unknown_variant_message_lists_wavefront(self, rng):
        with pytest.raises(ShapeError, match="wavefront"):
            bulge_chase(
                extract_band(random_symmetric(8, rng), 2), 2, variant="panel"
            )


class TestWavefrontEngineAndWorkspace:
    def test_engine_tags(self, rng):
        ab = extract_band(random_symmetric(40, rng), 5)
        eng = Fp64Engine(record=True)
        bulge_chase_wavefront(ab, 5, engine=eng)
        tags = {r.tag for r in eng.trace.records}
        assert tags <= BULGE_WAVEFRONT_TAGS
        assert "bulge.wavefront.tile" in tags
        assert "bulge.wavefront.syr2k" in tags
        assert "bulge.wavefront.q" in tags
        assert all(is_algorithm_tag(t) for t in tags)

    def test_no_q_tags(self, rng):
        ab = extract_band(random_symmetric(40, rng), 5)
        eng = Fp64Engine(record=True)
        bulge_chase_wavefront(ab, 5, want_q=False, engine=eng)
        assert "bulge.wavefront.q" not in {r.tag for r in eng.trace.records}

    def test_steady_state_alloc_free(self, rng):
        ab = extract_band(random_symmetric(48, rng), 6)
        ws = Workspace()
        bulge_chase_wavefront(ab, 6, workspace=ws)
        before = dict(ws.stats())
        bulge_chase_wavefront(ab, 6, workspace=ws)
        after = dict(ws.stats())
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]


class TestDriverBulgeVariant:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_syevd_2stage_variant(self, rng, variant):
        from repro.eig.driver import syevd_2stage

        a = random_symmetric(64, rng)
        res = syevd_2stage(
            a, b=8, nb=16, precision="fp64", bulge_variant=variant
        )
        lam, x = res.eigenvalues, res.eigenvectors
        assert np.linalg.norm(a @ x - x * lam) / np.linalg.norm(a) < 1e-12
        np.testing.assert_allclose(x.T @ x, np.eye(64), atol=1e-12)

    def test_rejects_bad_variant(self, rng):
        from repro.eig.driver import syevd_2stage

        with pytest.raises(ValidationError) as exc:
            syevd_2stage(random_symmetric(16, rng), b=4, bulge_variant="fast")
        assert exc.value.field == "bulge_variant"

    def test_syevd_selected_rejects_bad_variant(self, rng):
        from repro.eig.driver import syevd_selected

        with pytest.raises(ValidationError) as exc:
            syevd_selected(
                random_symmetric(16, rng), b=4, select=(0, 3),
                bulge_variant="fast",
            )
        assert exc.value.field == "bulge_variant"

    def test_wavefront_with_abft(self, rng):
        from repro.eig.driver import syevd_2stage

        a = random_symmetric(48, rng)
        res = syevd_2stage(
            a, b=8, nb=16, precision="fp64", bulge_variant="wavefront",
            abft="correct",
        )
        lam, x = res.eigenvalues, res.eigenvectors
        assert np.linalg.norm(a @ x - x * lam) / np.linalg.norm(a) < 1e-12


class TestBulgeFlopModels:
    def test_dispatch_and_positive(self):
        from repro.metrics import bulge_flops

        for variant in VARIANTS:
            with_q = bulge_flops(256, 16, variant=variant, want_q=True)
            without = bulge_flops(256, 16, variant=variant, want_q=False)
            assert with_q > without > 0

    def test_wavefront_counts_engine_visible_work(self, rng):
        # The wavefront model's engine-visible portion must equal the
        # flops the engine actually records.
        from repro.gemm.symbolic import trace_bulge_wavefront

        n, b = 40, 5
        ab = extract_band(random_symmetric(n, rng), b)
        eng = Fp64Engine(record=True)
        bulge_chase_wavefront(ab, b, engine=eng)
        rec = eng.trace.filter(lambda r: is_algorithm_tag(r.tag))
        assert rec.total_flops == trace_bulge_wavefront(n, b, want_q=True).total_flops

    def test_phase_plan_varies_with_variant(self):
        from repro.obs.live.progress import phase_plan

        plans = {
            v: phase_plan(256, 16, 64, bulge_variant=v)["bulge"]
            for v in VARIANTS
        }
        assert len(set(plans.values())) == 3
        assert all(p > 0 for p in plans.values())
