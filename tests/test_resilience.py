"""Unit tests for the resilience subsystem: faults, detectors, policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, NumericalBreakdownError
from repro.precision.modes import Precision
from repro.resilience import (
    DetectorBank,
    DetectorConfig,
    EscalationLadder,
    FaultInjector,
    FaultSpec,
    ResilienceContext,
    ResilienceReport,
)
from repro.resilience.detectors import (
    effective_eps,
    has_nonfinite,
    max_abs,
    panel_orthogonality_defect,
    residual_probe,
    symmetry_defect,
)

from conftest import random_symmetric


# ---------------------------------------------------------------------------
# Fault injector
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="x", kind="bitrot")

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultSpec(site="x", fraction=0.0)

    @pytest.mark.parametrize("kind", ["nan", "inf", "sign_flip", "mantissa_noise", "overflow"])
    def test_all_kinds_construct(self, kind):
        assert FaultSpec(site="x", kind=kind).kind == kind


class TestFaultInjector:
    def test_fires_only_at_matching_site_and_index(self):
        inj = FaultInjector(FaultSpec(site="wy_right", kind="nan", call_index=2))
        a = np.ones((4, 4))
        assert not np.isnan(inj.apply("panel_tsqr", a)).any()
        assert not np.isnan(inj.apply("wy_right", a)).any()   # index 0
        assert not np.isnan(inj.apply("wy_right", a)).any()   # index 1
        out = inj.apply("wy_right", a)                        # index 2: fires
        assert np.isnan(out).any()
        assert len(inj.fired) == 1
        rec = inj.fired[0]
        assert (rec.site, rec.call_index, rec.kind) == ("wy_right", 2, "nan")

    def test_one_shot_by_default(self):
        inj = FaultInjector(FaultSpec(site="s", kind="inf", call_index=0))
        assert np.isinf(inj.apply("s", np.ones(8))).any()
        for _ in range(3):
            assert not np.isinf(inj.apply("s", np.ones(8))).any()
        assert len(inj.fired) == 1

    def test_persistent_fault_keeps_firing(self):
        inj = FaultInjector(FaultSpec(site="s", kind="nan", call_index=1, count=3))
        hits = [np.isnan(inj.apply("s", np.ones(8))).any() for _ in range(6)]
        assert hits == [False, True, True, True, False, False]

    def test_glob_site_patterns(self):
        inj = FaultInjector(FaultSpec(site="wy_*", kind="nan", call_index=0))
        out = inj.apply("wy_full_right", np.ones(8))
        assert np.isnan(out).any()

    def test_deterministic_corruption(self):
        a = np.arange(100, dtype=np.float64).reshape(10, 10)
        spec = FaultSpec(site="s", kind="sign_flip", fraction=0.2, seed=7)
        out1 = FaultInjector(spec).apply("s", a)
        out2 = FaultInjector(spec).apply("s", a)
        np.testing.assert_array_equal(out1, out2)
        assert (out1 != a).any()

    def test_does_not_mutate_input(self):
        a = np.ones((4, 4))
        FaultInjector(FaultSpec(site="s", kind="nan")).apply("s", a)
        assert not np.isnan(a).any()

    def test_overflow_scales_entries(self):
        inj = FaultInjector(FaultSpec(site="s", kind="overflow", scale=1e30))
        out = inj.apply("s", np.ones(50))
        assert max_abs(out) >= 1e29
        assert np.isfinite(out).all()

    def test_reset_restores_counters(self):
        inj = FaultInjector(FaultSpec(site="s", kind="nan", call_index=0))
        inj.apply("s", np.ones(4))
        inj.reset()
        assert inj.fired == []
        assert np.isnan(inj.apply("s", np.ones(4))).any()


# ---------------------------------------------------------------------------
# Detector measurements
# ---------------------------------------------------------------------------


class TestMeasurements:
    def test_has_nonfinite(self):
        assert not has_nonfinite(np.ones(4))
        assert has_nonfinite(np.array([1.0, np.nan]))
        assert has_nonfinite(np.array([1.0, np.inf]))

    def test_max_abs_ignores_nan(self):
        assert max_abs(np.array([1.0, -3.0, np.nan])) == 3.0
        assert max_abs(np.array([], dtype=np.float64)) == 0.0

    def test_orthogonality_defect_clean_vs_corrupt(self, rng):
        from repro.sbr.panel import make_panel_strategy

        x = rng.standard_normal((32, 6))
        pf = make_panel_strategy("blocked_qr").factor(x.copy())
        w, y = pf.w, pf.y
        assert panel_orthogonality_defect(w, y) < 1e-12
        w_bad = w.copy()
        w_bad[0, 0] += 0.05
        assert panel_orthogonality_defect(w_bad, y) > 1e-4

    def test_symmetry_defect(self, rng):
        a = random_symmetric(80, rng)
        assert symmetry_defect(a) == 0.0
        a[3, 60] += 1.0
        assert symmetry_defect(a, sample=None) >= 1.0

    def test_residual_probe_consistent_vs_broken(self, rng):
        from repro.gemm.engine import make_engine
        from repro.sbr.wy import sbr_wy

        a = random_symmetric(48, rng)
        res = sbr_wy(a, 4, 16, engine=make_engine("fp64"))
        assert residual_probe(a, res.q, res.band) < 1e-12
        assert residual_probe(a, res.q, 2.0 * res.band) > 1e-2

    def test_effective_eps_floors_at_storage(self):
        arr32 = np.zeros(2, dtype=np.float32)
        eps = effective_eps(Precision.FP64, arr32)
        assert eps == pytest.approx(float(np.finfo(np.float32).eps))
        assert effective_eps(Precision.FP16_TC, arr32) == Precision.FP16_TC.machine_eps


# ---------------------------------------------------------------------------
# Detector bank thresholds
# ---------------------------------------------------------------------------


class TestDetectorBank:
    def test_check_output_nan(self):
        bank = DetectorBank()
        with pytest.raises(NumericalBreakdownError) as ei:
            bank.check_output(
                np.array([1.0, np.nan]), site="wy_right",
                phase="sbr.panel", panel=3, precision=Precision.FP32,
            )
        exc = ei.value
        assert exc.detector == "nonfinite"
        assert exc.phase == "sbr.panel"
        assert exc.panel == 3
        assert exc.site == "wy_right"
        assert "sbr.panel" in str(exc)

    def test_check_output_magnitude(self):
        bank = DetectorBank(DetectorConfig(magnitude_limit=1e10))
        with pytest.raises(NumericalBreakdownError) as ei:
            bank.check_output(
                np.array([1e12]), site="s", phase=None, panel=None,
                precision=Precision.FP32,
            )
        assert ei.value.detector == "magnitude"
        assert ei.value.value == pytest.approx(1e12)
        assert ei.value.threshold == pytest.approx(1e10)

    def test_check_output_clean_passes(self):
        DetectorBank().check_output(
            np.ones(8), site="s", phase=None, panel=None, precision=Precision.FP16_TC
        )

    def test_detectors_can_be_disabled(self):
        bank = DetectorBank(DetectorConfig(nonfinite=False, magnitude=False))
        bank.check_output(
            np.array([np.nan, 1e30]), site="s", phase=None, panel=None,
            precision=Precision.FP32,
        )

    def test_norm_growth(self):
        bank = DetectorBank(DetectorConfig(norm_growth_factor=10.0))
        bank.check_norm_growth(
            np.full(4, 5.0), 1.0, phase=None, panel=None, precision=Precision.FP32
        )
        with pytest.raises(NumericalBreakdownError) as ei:
            bank.check_norm_growth(
                np.full(4, 50.0), 1.0, phase=None, panel=None,
                precision=Precision.FP32,
            )
        assert ei.value.detector == "norm_growth"

    def test_symmetry_drift(self, rng):
        bank = DetectorBank()
        a = random_symmetric(32, rng)
        bank.check_symmetry(a, phase=None, panel=None, precision=Precision.FP32)
        a[1, 30] += 1.0
        with pytest.raises(NumericalBreakdownError) as ei:
            bank.check_symmetry(a, phase=None, panel=None, precision=Precision.FP32)
        assert ei.value.detector == "symmetry"


# ---------------------------------------------------------------------------
# Escalation ladder & precision ordering
# ---------------------------------------------------------------------------


class TestLadder:
    def test_next_safer_chain(self):
        assert Precision.FP16_TC.next_safer is Precision.FP16_EC_TC
        assert Precision.FP16_EC_TC.next_safer is Precision.TF32_TC
        assert Precision.BF16_TC.next_safer is Precision.TF32_TC
        assert Precision.TF32_TC.next_safer is Precision.FP32
        assert Precision.FP32.next_safer is Precision.FP64
        assert Precision.FP64.next_safer is None

    def test_ladder_method_lists_safer_modes(self):
        assert Precision.FP16_TC.ladder() == [
            Precision.FP16_TC, Precision.FP16_EC_TC, Precision.TF32_TC,
            Precision.FP32, Precision.FP64,
        ]
        assert Precision.FP64.ladder() == [Precision.FP64]

    def test_every_ladder_ends_at_fp64_without_cycles(self):
        for mode in Precision:
            chain = mode.ladder()
            assert chain[0] is mode
            assert chain[-1] is Precision.FP64
            assert len(set(chain)) == len(chain)

    def test_ladder_never_widens_fp16_operand_range(self):
        # The ladder is monotone in *safety*: eps never exceeds the
        # mode's own, except FP16_EC_TC -> TF32_TC which trades eps for
        # fp32 exponent range (the overflow hazard detectors care about).
        for mode in Precision:
            for prev, nxt in zip(mode.ladder(), mode.ladder()[1:]):
                if prev is Precision.FP16_EC_TC:
                    continue
                assert nxt.machine_eps <= prev.machine_eps

    def test_single_rung(self):
        lad = EscalationLadder()
        assert lad.escalate(Precision.FP32, 1) is Precision.FP64
        assert lad.escalate(Precision.FP64, 1) is None

    def test_exponential_widening(self):
        lad = EscalationLadder()
        assert lad.rungs_for_attempt(1) == 1
        assert lad.rungs_for_attempt(2) == 2
        assert lad.rungs_for_attempt(3) == 4
        # From FP16_TC: attempt 2 climbs 2 rungs -> TF32_TC.
        assert lad.escalate(Precision.FP16_TC, 2) is Precision.TF32_TC
        # Attempt 3 climbs 4 rungs -> clamps at FP64.
        assert lad.escalate(Precision.FP16_TC, 3) is Precision.FP64

    def test_widen_scales_base(self):
        lad = EscalationLadder(widen=2)
        assert lad.escalate(Precision.FP16_TC, 1) is Precision.TF32_TC


# ---------------------------------------------------------------------------
# Report and context plumbing
# ---------------------------------------------------------------------------


class TestReportAndContext:
    def test_report_empty_and_summary(self):
        rep = ResilienceReport()
        assert rep.empty
        assert "clean" in rep.summary()
        rep.retries = 1
        assert not rep.empty
        assert "1 retry" in rep.summary()

    def test_report_to_dict_roundtrips_json(self):
        import json

        rep = ResilienceReport()
        rep.final_precision["sbr"] = "fp32"
        json.dumps(rep.to_dict())

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="on_breakdown"):
            ResilienceContext(on_breakdown="panic")

    def test_wrap_engine_idempotent(self):
        from repro.gemm.engine import make_engine

        ctx = ResilienceContext()
        eng = ctx.wrap_engine(make_engine("fp32"))
        assert ctx.wrap_engine(eng) is eng

    def test_engine_escalation_swaps_and_restores(self):
        from repro.gemm.engine import make_engine

        ctx = ResilienceContext()
        eng = ctx.wrap_engine(make_engine("fp32"))
        assert not eng.escalated
        eng.escalate_to(Precision.FP64)
        assert eng.escalated and eng.precision is Precision.FP64
        # Storage dtype stays the base policy's.
        assert eng.working_dtype == np.dtype(np.float32)
        eng.restore_base()
        assert eng.precision is Precision.FP32

    def test_detection_recorded_with_unit_context(self):
        ctx = ResilienceContext()
        with pytest.raises(NumericalBreakdownError):
            with ctx.unit("sbr.panel", panel=5):
                ctx.check_array(np.array([np.nan]), site="probe")
        assert len(ctx.report.detections) == 1
        det = ctx.report.detections[0]
        assert det.phase == "sbr.panel" and det.panel == 5

    def test_handle_breakdown_raise_mode(self):
        ctx = ResilienceContext(on_breakdown="raise")
        exc = NumericalBreakdownError("x")
        assert not ctx.handle_breakdown(exc, engine=None, attempt=0, phase="p")

    def test_handle_breakdown_budget(self):
        ctx = ResilienceContext(ladder=EscalationLadder(max_retries=2))
        exc = NumericalBreakdownError("x")
        assert ctx.handle_breakdown(exc, engine=None, attempt=0, phase="p")
        assert ctx.handle_breakdown(exc, engine=None, attempt=1, phase="p")
        assert not ctx.handle_breakdown(exc, engine=None, attempt=2, phase="p")
        assert ctx.report.retries == 2

    def test_best_effort_final_pass_granted_once(self):
        ctx = ResilienceContext(
            on_breakdown="best_effort", ladder=EscalationLadder(max_retries=0)
        )
        exc = NumericalBreakdownError("x")
        assert ctx.handle_breakdown(exc, engine=None, attempt=0, phase="p")
        assert ctx.report.best_effort == ["p"]
        # The suppressed final pass failing again must not loop forever.
        assert not ctx.handle_breakdown(exc, engine=None, attempt=1, phase="p")


class TestBackoff:
    """Shared exponential backoff (serve retries + escalation ladder)."""

    def test_exponential_growth_without_jitter(self):
        from repro.resilience import backoff
        delays = [backoff(k, base=0.05, cap=5.0) for k in (1, 2, 3, 4)]
        assert delays == [0.05, 0.1, 0.2, 0.4]

    def test_cap_bounds_delay(self):
        from repro.resilience import backoff
        assert backoff(50, base=0.05, cap=1.5) == 1.5

    def test_zero_for_nonpositive_attempt_or_base(self):
        from repro.resilience import backoff
        assert backoff(0) == 0.0
        assert backoff(-3) == 0.0
        assert backoff(4, base=0.0) == 0.0

    def test_jitter_stays_in_window(self):
        from repro.resilience import backoff
        rng = np.random.default_rng(0)
        for k in range(1, 8):
            nominal = backoff(k, base=0.05, cap=5.0)
            jittered = backoff(k, base=0.05, cap=5.0, jitter=0.5, rng=rng)
            assert nominal * 0.5 <= jittered <= nominal

    def test_deterministic_under_seeded_rng(self):
        from repro.resilience import backoff
        a = [backoff(k, rng=np.random.default_rng(7)) for k in (1, 2, 3)]
        b = [backoff(k, rng=np.random.default_rng(7)) for k in (1, 2, 3)]
        assert a == b

    def test_ladder_delay_defaults_immediate(self):
        from repro.resilience import EscalationLadder
        ladder = EscalationLadder()
        assert ladder.delay(1) == 0.0  # in-process retries don't sleep

    def test_ladder_delay_honors_backoff_base(self):
        from repro.resilience import EscalationLadder
        ladder = EscalationLadder(backoff_base=0.1, backoff_cap=0.5)
        assert ladder.delay(1) == 0.1
        assert ladder.delay(2) == 0.2
        assert ladder.delay(9) == 0.5
