"""Tests for the end-to-end EVD drivers (the paper's §6.4 case study)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import eigh

from repro.errors import ConfigurationError
from repro.eig import syevd_1stage, syevd_2stage
from repro.gemm import Fp64Engine
from repro.matrices import generate_symmetric
from repro.metrics import eigenvalue_error
from tests.conftest import random_symmetric


class TestSyevd2Stage:
    @pytest.mark.parametrize("method", ["wy", "zy"])
    def test_fp64_matches_lapack(self, rng, method):
        a = random_symmetric(96, rng)
        res = syevd_2stage(a, b=8, nb=32, method=method, precision="fp64")
        ref = np.linalg.eigvalsh(a)
        np.testing.assert_allclose(res.eigenvalues, ref, atol=1e-11)
        x = res.eigenvectors
        np.testing.assert_allclose(x.T @ x, np.eye(96), atol=1e-11)
        np.testing.assert_allclose(a @ x, x * res.eigenvalues, atol=1e-10)

    def test_values_only(self, rng):
        a = random_symmetric(64, rng)
        res = syevd_2stage(a, b=8, nb=16, want_vectors=False, precision="fp64")
        assert res.eigenvectors is None
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a), atol=1e-11)

    @pytest.mark.parametrize("solver", ["dc", "ql"])
    def test_tridiag_solver_choice(self, rng, solver):
        a = random_symmetric(48, rng)
        res = syevd_2stage(a, b=4, nb=16, tridiag_solver=solver, precision="fp64")
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a), atol=1e-11)

    def test_bisect_values_only(self, rng):
        a = random_symmetric(48, rng)
        res = syevd_2stage(a, b=4, nb=16, tridiag_solver="bisect", want_vectors=False, precision="fp64")
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a), atol=1e-9)

    def test_bisect_with_vectors_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            syevd_2stage(random_symmetric(32, rng), b=4, tridiag_solver="bisect")

    def test_bad_method(self, rng):
        with pytest.raises(ConfigurationError):
            syevd_2stage(random_symmetric(32, rng), b=4, method="xy")

    def test_default_nb(self, rng):
        a = random_symmetric(64, rng)
        res = syevd_2stage(a, b=8, precision="fp64")  # nb defaults to 4b = 32
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a), atol=1e-11)

    def test_fp16_tc_accuracy_level(self, rng):
        a, lam_true = generate_symmetric(128, distribution="arith", cond=1e3, rng=rng)
        res = syevd_2stage(a, b=8, nb=32, precision="fp16_tc", want_vectors=False)
        err = eigenvalue_error(lam_true, res.eigenvalues)
        # Paper Table 4: normalized error ~1e-5 at their scale; anything
        # below 1e-4 passes here, and it must be clearly worse than fp32.
        assert err < 1e-4
        res32 = syevd_2stage(a, b=8, nb=32, precision="fp32", want_vectors=False)
        assert eigenvalue_error(lam_true, res32.eigenvalues) < err

    def test_ec_tc_close_to_fp32(self, rng):
        a, lam_true = generate_symmetric(96, distribution="geo", cond=1e2, rng=rng)
        err_ec = eigenvalue_error(
            lam_true, syevd_2stage(a, b=8, nb=32, precision="fp16_ec_tc", want_vectors=False).eigenvalues
        )
        err_tc = eigenvalue_error(
            lam_true, syevd_2stage(a, b=8, nb=32, precision="fp16_tc", want_vectors=False).eigenvalues
        )
        assert err_ec < err_tc / 10

    def test_explicit_engine_overrides_precision(self, rng):
        a = random_symmetric(48, rng)
        eng = Fp64Engine(record=True)
        res = syevd_2stage(a, b=4, nb=16, engine=eng, precision="fp16_tc")
        assert res.engine is eng
        assert len(eng.trace) > 0
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a), atol=1e-11)

    def test_record_trace(self, rng):
        a = random_symmetric(48, rng)
        res = syevd_2stage(a, b=4, nb=16, precision="fp32", record_trace=True)
        assert res.engine.trace is not None and len(res.engine.trace) > 0

    def test_result_contains_band_and_tridiagonal(self, rng):
        a = random_symmetric(48, rng)
        res = syevd_2stage(a, b=4, nb=16, precision="fp64")
        assert res.sbr is not None and res.sbr.bandwidth == 4
        d, e = res.tridiagonal
        assert d.shape == (48,) and e.shape == (47,)

    def test_eigh_agreement_with_vectors_subspace(self, rng):
        # For well-separated eigenvalues, eigenvectors match LAPACK's up to
        # sign.
        a, _ = generate_symmetric(32, distribution="arith", cond=10, rng=rng)
        res = syevd_2stage(a, b=4, nb=8, precision="fp64")
        lam_ref, v_ref = eigh(a)
        overlap = np.abs(np.sum(res.eigenvectors * v_ref, axis=0))
        np.testing.assert_allclose(overlap, 1.0, atol=1e-8)


class TestSyevd1Stage:
    def test_matches_lapack(self, rng):
        a = random_symmetric(64, rng)
        res = syevd_1stage(a)
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a), atol=1e-11)
        x = res.eigenvectors
        np.testing.assert_allclose(a @ x, x * res.eigenvalues, atol=1e-10)

    def test_values_only(self, rng):
        res = syevd_1stage(random_symmetric(32, rng), want_vectors=False)
        assert res.eigenvectors is None

    def test_agrees_with_2stage(self, rng):
        a = random_symmetric(72, rng)
        lam1 = syevd_1stage(a, want_vectors=False).eigenvalues
        lam2 = syevd_2stage(a, b=8, nb=24, precision="fp64", want_vectors=False).eigenvalues
        np.testing.assert_allclose(lam1, lam2, atol=1e-11)
