"""Tests for Householder QR, blocked QR, TSQR, and WY reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError, SingularMatrixError
from repro.gemm import Fp64Engine, SgemmEngine
from repro.la import (
    blocked_qr,
    build_wy,
    householder_qr,
    lu_nopivot,
    qr_explicit,
    reconstruct_wy,
    solve_lower_unit,
    solve_upper,
    solve_upper_right,
    tsqr,
    wy_matrix,
)
from tests.conftest import assert_orthonormal_columns, assert_upper_triangular


class TestHouseholderQR:
    @pytest.mark.parametrize("m,n", [(8, 8), (20, 5), (100, 3), (7, 1)])
    def test_factorization(self, rng, m, n):
        a = rng.standard_normal((m, n))
        v_cols, betas, r = householder_qr(a)
        w, y = build_wy(v_cols, betas)
        q_thin = wy_matrix(w, y)[:, :n]
        np.testing.assert_allclose(q_thin @ r, a, atol=1e-12)
        assert_upper_triangular(r)

    def test_v_unit_lower(self, rng):
        v_cols, _, _ = householder_qr(rng.standard_normal((10, 4)))
        for j in range(4):
            assert v_cols[j, j] == 1.0
            np.testing.assert_array_equal(v_cols[:j, j], 0)

    def test_rejects_wide(self, rng):
        with pytest.raises(ShapeError):
            householder_qr(rng.standard_normal((3, 5)))

    def test_rank_deficient_still_factors(self, rng):
        a = np.zeros((8, 3))
        a[:, 0] = rng.standard_normal(8)
        a[:, 1] = 2 * a[:, 0]
        v_cols, betas, r = householder_qr(a)
        w, y = build_wy(v_cols, betas)
        np.testing.assert_allclose(wy_matrix(w, y)[:, :3] @ r, a, atol=1e-12)


class TestBlockedQR:
    @pytest.mark.parametrize("block", [1, 2, 3, 8, 100])
    def test_matches_unblocked(self, rng, block):
        a = rng.standard_normal((24, 10))
        vu, bu, ru = householder_qr(a)
        vb, bb, rb = blocked_qr(a, block=block, engine=Fp64Engine())
        np.testing.assert_allclose(rb, ru, atol=1e-12)
        np.testing.assert_allclose(vb, vu, atol=1e-12)

    def test_records_trailing_gemms(self, rng):
        eng = Fp64Engine(record=True)
        blocked_qr(rng.standard_normal((32, 16)), block=8, engine=eng)
        tags = eng.trace.tags()
        assert tags["qr_trailing"] == 2 * 1  # hmm: panels with trailing: 1 per non-final panel

    def test_bad_block(self, rng):
        with pytest.raises(ShapeError):
            blocked_qr(rng.standard_normal((8, 4)), block=0)


class TestQrExplicit:
    @pytest.mark.parametrize("m,n", [(12, 12), (30, 8), (64, 16)])
    def test_factorization(self, rng, m, n):
        a = rng.standard_normal((m, n))
        q, r = qr_explicit(a, engine=Fp64Engine())
        np.testing.assert_allclose(q @ r, a, atol=1e-12)
        assert_orthonormal_columns(q)
        assert_upper_triangular(r)

    def test_matches_numpy_up_to_signs(self, rng):
        a = rng.standard_normal((20, 6))
        q, r = qr_explicit(a, engine=Fp64Engine())
        q_np, r_np = np.linalg.qr(a)
        signs = np.sign(np.diagonal(r)) * np.sign(np.diagonal(r_np))
        np.testing.assert_allclose(q * signs, q_np, atol=1e-12)


class TestTSQR:
    @pytest.mark.parametrize("m,n,leaf", [(64, 8, None), (100, 5, 20), (33, 4, 8), (256, 16, 32), (16, 16, None)])
    def test_factorization(self, rng, m, n, leaf):
        a = rng.standard_normal((m, n))
        q, r = tsqr(a, leaf_rows=leaf, engine=Fp64Engine())
        np.testing.assert_allclose(q @ r, a, atol=1e-11)
        assert_orthonormal_columns(q, atol=1e-11)
        assert_upper_triangular(r)

    def test_single_leaf(self, rng):
        a = rng.standard_normal((10, 4))
        q, r = tsqr(a, leaf_rows=100, engine=Fp64Engine())
        np.testing.assert_allclose(q @ r, a, atol=1e-12)

    def test_r_matches_householder_up_to_signs(self, rng):
        a = rng.standard_normal((80, 6))
        _, r_tree = tsqr(a, leaf_rows=20, engine=Fp64Engine())
        _, _, r_flat = householder_qr(a)
        np.testing.assert_allclose(np.abs(r_tree), np.abs(r_flat), atol=1e-11)

    def test_rejects_wide(self, rng):
        with pytest.raises(ShapeError):
            tsqr(rng.standard_normal((3, 6)))

    def test_rejects_small_leaf(self, rng):
        with pytest.raises(ShapeError):
            tsqr(rng.standard_normal((20, 6)), leaf_rows=4)

    def test_records_merge_gemms(self, rng):
        eng = Fp64Engine(record=True)
        tsqr(rng.standard_normal((64, 4)), leaf_rows=16, engine=eng)
        assert eng.trace.tags()["tsqr"] > 0

    def test_float32_input(self, rng):
        a = rng.standard_normal((40, 6)).astype(np.float32)
        q, r = tsqr(a, engine=SgemmEngine())
        assert q.dtype == np.float32
        np.testing.assert_allclose(q @ r, a, atol=1e-4)


class TestLU:
    def test_factorization(self, rng):
        a = rng.standard_normal((8, 8)) + 8 * np.eye(8)
        l, u = lu_nopivot(a)
        np.testing.assert_allclose(l @ u, a, atol=1e-12)
        np.testing.assert_array_equal(np.triu(l, 1), 0)
        np.testing.assert_array_equal(np.diagonal(l), 1)
        np.testing.assert_array_equal(np.tril(u, -1), 0)

    def test_singular_raises(self):
        a = np.ones((3, 3))  # rank 1 -> zero pivot at step 1
        with pytest.raises(SingularMatrixError):
            lu_nopivot(a)

    def test_zero_leading_pivot(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(SingularMatrixError):
            lu_nopivot(a)

    def test_pivot_tolerance(self):
        a = np.diag([1.0, 1e-14, 1.0])
        lu_nopivot(a)  # fine with tol 0
        with pytest.raises(SingularMatrixError):
            lu_nopivot(a, pivot_tol=1e-10)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            lu_nopivot(rng.standard_normal((3, 4)))

    def test_solve_lower_unit(self, rng):
        l = np.tril(rng.standard_normal((6, 6)), -1) + np.eye(6)
        b = rng.standard_normal((6, 3))
        np.testing.assert_allclose(l @ solve_lower_unit(l, b), b, atol=1e-12)

    def test_solve_upper(self, rng):
        u = np.triu(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        b = rng.standard_normal((6, 2))
        np.testing.assert_allclose(u @ solve_upper(u, b), b, atol=1e-12)

    def test_solve_upper_right(self, rng):
        u = np.triu(rng.standard_normal((5, 5))) + 5 * np.eye(5)
        b = rng.standard_normal((3, 5))
        np.testing.assert_allclose(solve_upper_right(b, u) @ u, b, atol=1e-12)

    @pytest.mark.parametrize("fn", [solve_lower_unit, solve_upper])
    def test_solve_shape_mismatch(self, rng, fn):
        with pytest.raises(ShapeError):
            fn(rng.standard_normal((4, 4)), rng.standard_normal((5, 2)))


class TestReconstructWY:
    @pytest.mark.parametrize("m,n", [(8, 8), (40, 6), (128, 16), (9, 2)])
    def test_reconstruction_exact(self, rng, m, n):
        a = rng.standard_normal((m, n))
        q, r = tsqr(a, engine=Fp64Engine())
        w, y, s = reconstruct_wy(q, engine=Fp64Engine())
        q_full = wy_matrix(w, y)
        # (I - W Y^T)[:, :n] == Q S
        np.testing.assert_allclose(q_full[:, :n], q * s, atol=1e-12)
        # Full matrix orthogonal.
        np.testing.assert_allclose(q_full.T @ q_full, np.eye(m), atol=1e-12)
        # And the original factorization is recovered with flipped R.
        np.testing.assert_allclose(q_full[:, :n] @ (s[:, None] * r), a, atol=1e-11)

    def test_y_unit_lower_trapezoidal(self, rng):
        q, _ = tsqr(rng.standard_normal((20, 5)), engine=Fp64Engine())
        _, y, _ = reconstruct_wy(q, engine=Fp64Engine())
        for j in range(5):
            assert y[j, j] == 1.0
            np.testing.assert_array_equal(y[:j, j], 0)

    def test_signs_are_unit(self, rng):
        q, _ = tsqr(rng.standard_normal((30, 4)), engine=Fp64Engine())
        _, _, s = reconstruct_wy(q, engine=Fp64Engine())
        np.testing.assert_array_equal(np.abs(s), 1)

    def test_static_sign_choice_would_fail(self, rng):
        # Regression guard for the on-the-fly sign choice: with enough
        # columns, at least one sign decision differs from sign(diag(Q)),
        # and the reconstruction stays exact anyway.
        a = rng.standard_normal((60, 12))
        q, _ = tsqr(a, engine=Fp64Engine())
        w, y, s = reconstruct_wy(q, engine=Fp64Engine())
        q_full = wy_matrix(w, y)
        assert np.abs(q_full[:, :12] - q * s).max() < 1e-12

    def test_rejects_wide(self, rng):
        with pytest.raises(ShapeError):
            reconstruct_wy(rng.standard_normal((3, 5)))

    def test_records_gemm(self, rng):
        q, _ = tsqr(rng.standard_normal((20, 4)), engine=Fp64Engine())
        eng = Fp64Engine(record=True)
        reconstruct_wy(q, engine=eng)
        assert eng.trace.tags()["reconstruct"] == 1
