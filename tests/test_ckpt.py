"""Checkpoint/restart subsystem: atomic IO, ABFT, store, crash recovery.

The recovery tests are the acceptance criteria of the subsystem: a run
killed at *every* phase boundary (mid-SBR-panel, post-band, post-bulge,
post-D&C, pre-result) must resume to a bitwise-identical result
(:func:`repro.ckpt.result_digest` equality), and a torn or
checksum-violating checkpoint must surface as a structured
:class:`repro.errors.CheckpointCorruptionError` naming file and field —
never as silently wrong numbers.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.ckpt import (
    CheckpointConfig,
    CheckpointManager,
    abft_signature,
    resume,
    result_digest,
    verify_abft,
)
from repro.eig.driver import syevd_2stage
from repro.errors import (
    CheckpointCorruptionError,
    CheckpointSchemaError,
    ConfigurationError,
    SimulatedCrashError,
)
from repro.ioutils import (
    atomic_write_bytes,
    atomic_write_json,
    file_crc32,
    sweep_orphans,
)
from repro.resilience.crash import CrashFaultSpec, CrashInjector, parse_kill_site

from conftest import random_symmetric


def small_problem(n=48, seed=7, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return random_symmetric(n, rng, dtype=dtype)


# ---------------------------------------------------------------------------
# Atomic IO primitives
# ---------------------------------------------------------------------------


class TestAtomicIO:
    def test_atomic_write_replaces_complete_file(self, tmp_path):
        p = str(tmp_path / "x.bin")
        atomic_write_bytes(p, b"one")
        atomic_write_bytes(p, b"two-longer")
        with open(p, "rb") as fh:
            assert fh.read() == b"two-longer"
        assert not [n for n in os.listdir(tmp_path) if ".tmp-" in n]

    def test_atomic_write_json_rejects_before_touching_disk(self, tmp_path):
        p = str(tmp_path / "x.json")
        atomic_write_json(p, {"ok": 1})
        with pytest.raises(TypeError):
            atomic_write_json(p, {"bad": object()})
        with open(p) as fh:
            assert json.load(fh) == {"ok": 1}

    def test_sweep_orphans_removes_only_tmp_files(self, tmp_path):
        keep = tmp_path / "ckpt-000000-band.json"
        keep.write_text("{}")
        orphan = tmp_path / "ckpt-000001-band.npz.tmp-abc123"
        orphan.write_bytes(b"partial")
        removed = sweep_orphans(str(tmp_path))
        assert removed == [str(orphan)]
        assert keep.exists() and not orphan.exists()

    def test_file_crc32_detects_any_byte_change(self, tmp_path):
        p = str(tmp_path / "x.bin")
        atomic_write_bytes(p, b"payload bytes")
        before = file_crc32(p)
        with open(p, "r+b") as fh:
            fh.seek(3)
            fh.write(b"X")
        assert file_crc32(p) != before


# ---------------------------------------------------------------------------
# ABFT signatures
# ---------------------------------------------------------------------------


class TestAbft:
    def test_roundtrip_passes(self, rng):
        a = rng.standard_normal((9, 5)).astype(np.float32)
        verify_abft("a", a, abft_signature(a))

    def test_detects_single_element_corruption(self, rng):
        a = rng.standard_normal((8, 8))
        sig = abft_signature(a)
        bad = a.copy()
        bad[3, 4] += 1e-9
        with pytest.raises(CheckpointCorruptionError) as ei:
            verify_abft("w", bad, sig, path="/run/x.npz")
        assert ei.value.reason == "abft"
        assert ei.value.path == "/run/x.npz"
        assert ei.value.field.startswith("abft:w")

    def test_detects_shape_and_dtype_changes(self, rng):
        a = rng.standard_normal((6, 4))
        sig = abft_signature(a)
        with pytest.raises(CheckpointCorruptionError, match="shape"):
            verify_abft("a", a[:5], sig)
        with pytest.raises(CheckpointCorruptionError, match="dtype"):
            verify_abft("a", a.astype(np.float32), sig)

    def test_1d_arrays_signed_too(self, rng):
        d = rng.standard_normal(17)
        sig = abft_signature(d)
        verify_abft("d", d, sig)
        bad = d.copy()
        bad[0] = -bad[0]
        with pytest.raises(CheckpointCorruptionError):
            verify_abft("d", bad, sig)

    def test_catches_silent_payload_patch_behind_valid_file_crc(self, tmp_path):
        """ABFT is independent of the file CRC: rewrite the payload with a
        perturbed array *and* a matching CRC in the commit record — the
        per-array signature still flags it."""
        a = small_problem(24)
        mgr = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path)))
        mgr.begin(a, {"driver": "t"})
        w = np.arange(12.0).reshape(3, 4)
        meta_path = mgr.save("band", arrays={"w": w}, scalars={})
        npz_path = meta_path[:-len(".json")] + ".npz"
        patched = w.copy()
        patched[1, 2] += 1.0
        import io as _io

        buf = _io.BytesIO()
        np.savez(buf, w=patched)
        atomic_write_bytes(npz_path, buf.getvalue())
        with open(meta_path) as fh:
            meta = json.load(fh)
        meta["crc"] = file_crc32(npz_path)  # attacker fixes the CRC too
        atomic_write_json(meta_path, meta, indent=1)
        with pytest.raises(CheckpointCorruptionError) as ei:
            mgr.load_path(meta_path)
        assert ei.value.reason == "abft"


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


class TestStore:
    def test_save_load_roundtrip_exact_bits(self, tmp_path, rng):
        a = small_problem(16)
        mgr = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path)))
        mgr.begin(a, {"driver": "t", "n": 16})
        w = rng.standard_normal((5, 3)).astype(np.float32)
        mgr.save("band", arrays={"w": w, "skip": None},
                 scalars={"panel_index": 4, "norm": 1.25})
        ck = mgr.phase("band")
        assert ck is not None
        assert ck.step == "band" and ck.scalars["panel_index"] == 4
        assert ck.arrays["w"].tobytes() == w.tobytes()
        assert "skip" not in ck.arrays  # None-valued arrays are dropped

    def test_config_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(run_dir=str(tmp_path), every=0)
        with pytest.raises(ConfigurationError):
            CheckpointConfig(run_dir=str(tmp_path), keep_panels=0)

    def test_begin_refuses_different_config(self, tmp_path):
        a = small_problem(16)
        mgr = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path)))
        mgr.begin(a, {"driver": "t", "b": 4})
        mgr2 = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path)))
        with pytest.raises(ConfigurationError, match="differs"):
            mgr2.begin(a, {"driver": "t", "b": 8})

    def test_begin_refuses_different_input_matrix(self, tmp_path):
        a = small_problem(16)
        mgr = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path)))
        mgr.begin(a, {"driver": "t"})
        other = a.copy()
        other[0, 0] += 1.0
        mgr2 = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path)))
        with pytest.raises(CheckpointCorruptionError):
            mgr2.begin(other, {"driver": "t"})

    def test_torn_payload_raises_with_context(self, tmp_path, rng):
        mgr = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path)))
        mgr.begin(small_problem(16), {"driver": "t"})
        meta_path = mgr.save("band", arrays={"w": rng.standard_normal((8, 8))})
        npz_path = meta_path[:-len(".json")] + ".npz"
        size = os.path.getsize(npz_path)
        with open(npz_path, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(CheckpointCorruptionError) as ei:
            mgr.load_path(meta_path)
        assert ei.value.reason == "torn"
        assert ei.value.path == npz_path
        assert ei.value.field == "crc"

    def test_stale_schema_raises_schema_error(self, tmp_path, rng):
        mgr = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path)))
        mgr.begin(small_problem(16), {"driver": "t"})
        meta_path = mgr.save("band", arrays={"w": rng.standard_normal(4)})
        with open(meta_path) as fh:
            meta = json.load(fh)
        meta["schema"] = 99
        with open(meta_path, "w") as fh:
            json.dump(meta, fh)
        with pytest.raises(CheckpointSchemaError) as ei:
            mgr.load_path(meta_path)
        assert ei.value.reason == "schema" and ei.value.field == "schema"
        assert isinstance(ei.value, CheckpointCorruptionError)

    def test_missing_commit_record_means_no_checkpoint(self, tmp_path, rng):
        """An orphan payload without its commit record is invisible — the
        commit record *is* the commit point."""
        mgr = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path)))
        mgr.begin(small_problem(16), {"driver": "t"})
        meta_path = mgr.save("band", arrays={"w": rng.standard_normal(4)})
        os.unlink(meta_path)
        assert mgr.phase("band") is None

    def test_nonstrict_latest_falls_back_and_records_skip(self, tmp_path, rng):
        cfg = CheckpointConfig(run_dir=str(tmp_path), strict=False)
        mgr = CheckpointManager(cfg)
        mgr.begin(small_problem(16), {"driver": "t"})
        mgr.save("band", arrays={"w": np.ones(3)}, scalars={"gen": 1})
        newer = mgr.save("band", arrays={"w": np.ones(3)}, scalars={"gen": 2})
        npz = newer[:-len(".json")] + ".npz"
        with open(npz, "r+b") as fh:
            fh.truncate(os.path.getsize(npz) // 2)
        ck = mgr.latest(steps=("band",))
        assert ck is not None and ck.scalars["gen"] == 1
        assert len(mgr.report.skipped_corrupt) == 1
        assert mgr.report.skipped_corrupt[0]["path"] == newer

    def test_panel_pruning_keeps_newest(self, tmp_path, rng):
        cfg = CheckpointConfig(run_dir=str(tmp_path), keep_panels=2)
        mgr = CheckpointManager(cfg)
        mgr.begin(small_problem(16), {"driver": "t"})
        for i in range(5):
            mgr.save("sbr_panel", arrays={"a": np.full(2, float(i))},
                     scalars={"panel_index": i})
        kept = [s for _seq, s, _p in mgr.list() if s == "sbr_panel"]
        assert len(kept) == 2
        assert mgr.phase("sbr_panel").scalars["panel_index"] == 4


# ---------------------------------------------------------------------------
# Crash injector
# ---------------------------------------------------------------------------


class TestCrashInjector:
    def test_fires_at_site_and_index_once(self):
        inj = CrashInjector(CrashFaultSpec(site="ckpt.save.band.post", call_index=1))
        inj.fire("ckpt.save.band.pre")        # different site: no-op
        inj.fire("ckpt.save.band.post")       # index 0: no-op
        with pytest.raises(SimulatedCrashError) as ei:
            inj.fire("ckpt.save.band.post")   # index 1: fires
        assert ei.value.site == "ckpt.save.band.post" and ei.value.kind == "kill"
        inj.fire("ckpt.save.band.post")       # count exhausted: no-op
        assert len(inj.fired) == 1

    def test_glob_site_patterns(self):
        inj = CrashInjector(CrashFaultSpec(site="ckpt.save.*.pre"))
        with pytest.raises(SimulatedCrashError):
            inj.fire("ckpt.save.tridiag.pre")

    def test_parse_kill_site(self):
        spec = parse_kill_site("ckpt.save.band.post:2:torn_write")
        assert (spec.site, spec.call_index, spec.kind) == (
            "ckpt.save.band.post", 2, "torn_write")
        assert parse_kill_site("x").kind == "kill"
        with pytest.raises(ValueError):
            parse_kill_site("x:0:bitrot")

    def test_rejects_unknown_kind_and_bad_fraction(self):
        with pytest.raises(ValueError, match="crash kind"):
            CrashFaultSpec(site="x", kind="meteor")
        with pytest.raises(ValueError, match="truncate_fraction"):
            CrashFaultSpec(site="x", kind="torn_write", truncate_fraction=1.0)


# ---------------------------------------------------------------------------
# Crash → resume at every phase boundary
# ---------------------------------------------------------------------------

#: (site, call_index) covering every restart point the driver writes:
#: mid-SBR panel stream, post-band, post-bulge (tridiag), post-D&C
#: (trieig), and the instant before the final result is durable.
CRASH_SITES = [
    ("ckpt.save.sbr_panel.post", 1),
    ("ckpt.save.band.post", 0),
    ("ckpt.save.tridiag.post", 0),
    ("ckpt.save.trieig.post", 0),
    ("ckpt.save.result.pre", 0),
]


def reference_digest(a, **kw):
    return result_digest(syevd_2stage(a, **kw))


class TestCrashResume:
    @pytest.mark.parametrize("site,index", CRASH_SITES, ids=[s for s, _ in CRASH_SITES])
    def test_resume_is_bitwise_identical_fp64(self, tmp_path, site, index):
        a = small_problem(48)
        kw = dict(b=4, nb=8, precision="fp64", want_vectors=True)
        expected = reference_digest(a, **kw)
        crash = CrashInjector(CrashFaultSpec(site=site, call_index=index))
        cfg = CheckpointConfig(run_dir=str(tmp_path / "run"), crash=crash)
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(a, checkpoint=cfg, **kw)
        res = resume(str(tmp_path / "run"))
        assert res.checkpoint_report.resumed_from is not None
        assert result_digest(res) == expected

    def test_resume_mid_sbr_fp32(self, tmp_path):
        a = small_problem(48, dtype=np.float64)
        kw = dict(b=4, nb=8, precision="fp32", want_vectors=True)
        expected = reference_digest(a, **kw)
        crash = CrashInjector(
            CrashFaultSpec(site="ckpt.save.sbr_panel.post", call_index=2))
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(a, checkpoint=CheckpointConfig(
                run_dir=str(tmp_path / "run"), crash=crash), **kw)
        res = resume(str(tmp_path / "run"))
        assert result_digest(res) == expected
        lam_ref = np.linalg.eigvalsh(a)
        assert np.abs(np.sort(res.eigenvalues) - lam_ref).max() < 1e-3

    def test_resume_zy_method(self, tmp_path):
        a = small_problem(40)
        kw = dict(b=4, method="zy", precision="fp64", want_vectors=True)
        expected = reference_digest(a, **kw)
        crash = CrashInjector(
            CrashFaultSpec(site="ckpt.save.sbr_panel.post", call_index=1))
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(a, checkpoint=CheckpointConfig(
                run_dir=str(tmp_path / "run"), crash=crash), **kw)
        res = resume(str(tmp_path / "run"))
        assert result_digest(res) == expected

    def test_double_kill_then_resume(self, tmp_path):
        """Kill the initial run mid-SBR, kill the first resume at the
        tridiag boundary, and still converge to the reference digest."""
        a = small_problem(48)
        kw = dict(b=4, nb=8, precision="fp64", want_vectors=True)
        expected = reference_digest(a, **kw)
        run_dir = str(tmp_path / "run")
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(a, checkpoint=CheckpointConfig(
                run_dir=run_dir,
                crash=CrashInjector(CrashFaultSpec(
                    site="ckpt.save.sbr_panel.post", call_index=1))), **kw)
        with pytest.raises(SimulatedCrashError):
            resume(run_dir, crash=CrashInjector(
                CrashFaultSpec(site="ckpt.save.tridiag.post")))
        res = resume(run_dir)
        assert result_digest(res) == expected

    def test_resume_completed_run_replays_result(self, tmp_path):
        a = small_problem(32)
        run_dir = str(tmp_path / "run")
        first = syevd_2stage(a, b=4, nb=8, checkpoint=run_dir)
        again = resume(run_dir)
        assert result_digest(again) == result_digest(first)
        assert again.checkpoint_report.saves == 0  # nothing recomputed

    def test_resume_without_vectors(self, tmp_path):
        a = small_problem(32)
        kw = dict(b=4, nb=8, want_vectors=False)
        expected = reference_digest(a, **kw)
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(a, checkpoint=CheckpointConfig(
                run_dir=str(tmp_path / "run"),
                crash=CrashInjector(CrashFaultSpec(site="ckpt.save.band.post"))),
                **kw)
        res = resume(str(tmp_path / "run"))
        assert res.eigenvectors is None
        assert result_digest(res) == expected

    def test_torn_checkpoint_strict_resume_raises(self, tmp_path):
        a = small_problem(48)
        crash = CrashInjector(CrashFaultSpec(
            site="ckpt.save.tridiag.post", kind="torn_write"))
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(a, b=4, nb=8, checkpoint=CheckpointConfig(
                run_dir=str(tmp_path / "run"), crash=crash))
        with pytest.raises(CheckpointCorruptionError) as ei:
            resume(str(tmp_path / "run"))
        assert ei.value.reason == "torn"

    def test_torn_checkpoint_nonstrict_resume_falls_back(self, tmp_path):
        a = small_problem(48)
        kw = dict(b=4, nb=8, want_vectors=True)
        expected = reference_digest(a, **kw)
        crash = CrashInjector(CrashFaultSpec(
            site="ckpt.save.tridiag.post", kind="torn_write"))
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(a, checkpoint=CheckpointConfig(
                run_dir=str(tmp_path / "run"), crash=crash), **kw)
        res = resume(str(tmp_path / "run"), strict=False)
        assert result_digest(res) == expected
        assert len(res.checkpoint_report.skipped_corrupt) == 1

    def test_stale_schema_resume_raises_schema_error(self, tmp_path):
        a = small_problem(48)
        crash = CrashInjector(CrashFaultSpec(
            site="ckpt.save.band.post", kind="stale_schema"))
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(a, b=4, nb=8, checkpoint=CheckpointConfig(
                run_dir=str(tmp_path / "run"), crash=crash))
        with pytest.raises(CheckpointSchemaError):
            resume(str(tmp_path / "run"))

    def test_report_lands_on_result_and_in_manifest_dict(self, tmp_path):
        a = small_problem(32)
        res = syevd_2stage(a, b=4, nb=8, checkpoint=str(tmp_path / "run"))
        rep = res.checkpoint_report
        assert rep is not None and rep.saves >= 4  # band/tridiag/trieig/result
        d = rep.to_dict()
        assert d["run_dir"] == str(tmp_path / "run")
        assert "checkpoint" in rep.summary()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCkptCli:
    def run_cli(self, *argv):
        from repro.ckpt.__main__ import main

        return main(list(argv))

    def test_kill_resume_verify_list_cycle(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        rc = self.run_cli(
            "run", "--run-dir", run_dir, "--n", "32", "--b", "4", "--nb", "8",
            "--kill-at", "ckpt.save.sbr_panel.post:1")
        assert rc == CrashInjector.HARD_EXIT_CODE
        rc = self.run_cli("resume", run_dir)
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed from" in out and "digest" in out
        assert self.run_cli("list", run_dir) == 0
        assert self.run_cli("verify", run_dir) == 0
        listing = capsys.readouterr().out
        assert "result" in listing

    def test_verify_flags_torn_file(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        assert self.run_cli("run", "--run-dir", run_dir,
                            "--n", "32", "--b", "4", "--nb", "8") == 0
        npz = [n for n in sorted(os.listdir(run_dir))
               if n.startswith("ckpt-") and n.endswith(".npz")][0]
        p = os.path.join(run_dir, npz)
        with open(p, "r+b") as fh:
            fh.truncate(os.path.getsize(p) // 2)
        assert self.run_cli("verify", run_dir) == 1

    def test_resume_corrupt_exits_2(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        rc = self.run_cli(
            "run", "--run-dir", run_dir, "--n", "32", "--b", "4", "--nb", "8",
            "--kill-at", "ckpt.save.band.post:0:torn_write")
        assert rc == CrashInjector.HARD_EXIT_CODE
        assert self.run_cli("resume", run_dir) == 2


class TestConcurrentStores:
    """Two checkpointed runs in parallel threads sharing one workspace
    arena and one installed metrics registry — the serving layer's
    worker-pool configuration in miniature."""

    def test_parallel_runs_are_isolated_and_bitwise(self, tmp_path):
        import threading

        from repro.obs.live.registry import MetricsRegistry, install, uninstall
        from repro.perf.workspace import Workspace

        mats = [small_problem(40, seed=s) for s in (1, 2)]
        kw = dict(b=4, nb=8, precision="fp64", want_vectors=True)
        expected = [reference_digest(a, **kw) for a in mats]

        ws = Workspace()
        reg = MetricsRegistry()
        prev = install(reg)
        results: list = [None, None]
        errors: list = []

        def run(i):
            try:
                res = syevd_2stage(
                    mats[i], workspace=ws,
                    checkpoint=str(tmp_path / f"run-{i}"), **kw)
                results[i] = result_digest(res)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        try:
            threads = [threading.Thread(target=run, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
        finally:
            uninstall(prev)
        assert not errors
        assert results == expected
        # Both run dirs hold independent, verifiable checkpoint stores.
        for i in range(2):
            mgr = CheckpointManager(
                CheckpointConfig(run_dir=str(tmp_path / f"run-{i}")))
            assert mgr.latest("result") is not None

    def test_crash_in_one_thread_leaves_other_intact(self, tmp_path):
        import threading

        a_ok, a_crash = small_problem(40, seed=3), small_problem(40, seed=4)
        kw = dict(b=4, nb=8, precision="fp64")
        expected_ok = reference_digest(a_ok, **kw)
        expected_crash = reference_digest(a_crash, **kw)
        outcome: dict = {}

        def run_ok():
            res = syevd_2stage(
                a_ok, checkpoint=str(tmp_path / "ok"), **kw)
            outcome["ok"] = result_digest(res)

        def run_crash():
            crash = CrashInjector(CrashFaultSpec(
                site="ckpt.save.sbr_panel.post", call_index=1))
            try:
                syevd_2stage(a_crash, checkpoint=CheckpointConfig(
                    run_dir=str(tmp_path / "crash"), crash=crash), **kw)
            except SimulatedCrashError:
                outcome["crashed"] = True

        threads = [threading.Thread(target=run_ok),
                   threading.Thread(target=run_crash)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert outcome.get("crashed") is True
        assert outcome.get("ok") == expected_ok
        res = resume(str(tmp_path / "crash"))
        assert result_digest(res) == expected_crash


class TestInterruptFlush:
    """KeyboardInterrupt mid-run flushes a committed checkpoint before
    re-raising, so an interactive ^C (or SIGTERM) is resumable."""

    def _interrupt_at(self, monkeypatch, module, attr, nth):
        import importlib
        mod = importlib.import_module(module)
        original = getattr(mod, attr)
        calls = {"k": 0}

        def wrapper(*args, **kwargs):
            calls["k"] += 1
            if calls["k"] == nth:
                raise KeyboardInterrupt("test interrupt")
            return original(*args, **kwargs)

        monkeypatch.setattr(mod, attr, wrapper)

    def test_wy_interrupt_flush_and_resume(self, tmp_path, monkeypatch):
        a = small_problem(48, seed=11)
        kw = dict(b=4, nb=8, precision="fp64", want_vectors=True)
        expected = reference_digest(a, **kw)
        self._interrupt_at(
            monkeypatch, "repro.sbr.wy", "_resilient_panel_step", nth=4)
        with pytest.raises(KeyboardInterrupt):
            syevd_2stage(a, checkpoint=str(tmp_path / "run"), **kw)
        monkeypatch.undo()
        # The flush committed a mid-SBR checkpoint, not just phase zero.
        mgr = CheckpointManager(CheckpointConfig(run_dir=str(tmp_path / "run")))
        assert mgr.latest("sbr_panel") is not None
        res = resume(str(tmp_path / "run"))
        assert result_digest(res) == expected

    def test_zy_interrupt_flush_and_resume(self, tmp_path, monkeypatch):
        a = small_problem(48, seed=12)
        kw = dict(b=4, method="zy", precision="fp64", want_vectors=True)
        expected = reference_digest(a, **kw)
        self._interrupt_at(
            monkeypatch, "repro.sbr.zy", "_resilient_zy_panel", nth=3)
        with pytest.raises(KeyboardInterrupt):
            syevd_2stage(a, checkpoint=str(tmp_path / "run"), **kw)
        monkeypatch.undo()
        res = resume(str(tmp_path / "run"))
        assert result_digest(res) == expected

    def test_sigterm_context_converts_to_interrupt(self):
        import os
        import signal

        from repro.ioutils import sigterm_as_interrupt

        with sigterm_as_interrupt():
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)
        # Handler restored: SIGTERM no longer raises KeyboardInterrupt.
        assert signal.getsignal(signal.SIGTERM) != sigterm_as_interrupt


class TestResumeOverrides:
    """resume(**overrides): run-environment knobs only, never pinned config."""

    def _crashed_run(self, tmp_path):
        a = small_problem(40, seed=21)
        crash = CrashInjector(CrashFaultSpec(
            site="ckpt.save.sbr_panel.post", call_index=1))
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(a, b=4, nb=8, precision="fp64",
                         checkpoint=CheckpointConfig(
                             run_dir=str(tmp_path / "run"), crash=crash))
        return a

    def test_environment_override_forwarded(self, tmp_path):
        from repro.perf.workspace import Workspace
        a = self._crashed_run(tmp_path)
        expected = reference_digest(a, b=4, nb=8, precision="fp64")
        res = resume(str(tmp_path / "run"), workspace=Workspace())
        assert result_digest(res) == expected

    def test_pinned_config_override_rejected(self, tmp_path):
        self._crashed_run(tmp_path)
        with pytest.raises(ConfigurationError, match="pinned"):
            resume(str(tmp_path / "run"), precision="fp32")
