"""Tests for the experiment harness: each table/figure driver runs and
reports the paper's qualitative structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentResult, available_experiments, run_experiment
from repro.experiments.runner import _EXPERIMENTS


class TestRunner:
    def test_all_experiments_registered(self):
        assert set(available_experiments()) == {
            "table1", "table2", "table3", "table4",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "ablation_syr2k", "ablation_q_method", "ablation_panel",
            "ablation_precision", "ablation_recursive_qr",
            "ablation_scaling", "ablation_evd_vectors", "ablation_accumulator",
        }

    def test_ablations_run_through_registry(self):
        res = run_experiment("ablation_syr2k", sizes=(8192,))
        assert res.name == "ablation_syr2k" and len(res.rows) == 1
        res = run_experiment("ablation_recursive_qr", shapes=((8192, 4096),))
        assert res.rows[0]["speedup"] > 1.0

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_result_markdown(self):
        res = ExperimentResult(name="x", title="t", columns=["a", "b"])
        res.add_row(a=1, b=2.5)
        res.notes.append("note")
        md = res.to_markdown()
        assert "| a | b |" in md and "| 1 | 2.500 |" in md and "- note" in md

    def test_result_column_access(self):
        res = ExperimentResult(name="x", title="t", columns=["a"])
        res.add_row(a=1)
        res.add_row(a=2)
        assert res.column("a") == [1, 2]

    def test_cell_formatting(self):
        res = ExperimentResult(name="x", title="t", columns=["v"])
        res.add_row(v=1.23456e-8)
        assert "1.235e-08" in res.to_markdown()


class TestModelExperiments:
    def test_table1_model_matches_paper(self):
        res = run_experiment("table1")
        assert len(res.rows) == 8
        for row in res.rows:
            assert row["tc_ts_model"] == pytest.approx(row["tc_ts_paper"], rel=1e-9)
            assert row["sgemm_outer_model"] == pytest.approx(row["sgemm_outer_paper"], rel=1e-9)

    def test_table2_matches_paper_baseline(self):
        res = run_experiment("table2", n=32768, b=128, nb_values=(128,))
        zy = next(r for r in res.rows if r["algorithm"] == "ZY")
        wy = next(r for r in res.rows if r["algorithm"] == "WY")
        assert zy["flops_1e14"] == pytest.approx(0.70, abs=0.02)
        assert wy["flops_1e14"] == pytest.approx(0.93, abs=0.02)

    def test_fig5_sweet_spot(self):
        res = run_experiment("fig5")
        times = {r["nb"]: r["gemm_time_s"] for r in res.rows}
        assert min(times, key=times.get) == 1024

    def test_fig6_crossover(self):
        res = run_experiment("fig6")
        ratios = {r["n"]: r["zy_over_wy"] for r in res.rows}
        assert ratios[4096] < 1 < ratios[32768]

    def test_fig7_zy_wins(self):
        res = run_experiment("fig7")
        assert all(r["zy_over_wy"] < 1 for r in res.rows)

    def test_fig8_tsqr_wins(self):
        res = run_experiment("fig8")
        assert all(r["speedup_vs_magma"] > 2 for r in res.rows)

    def test_fig9_ablation_ordering(self):
        res = run_experiment("fig9", sizes=(32768,))
        row = res.rows[0]
        assert row["tc_tsqr_s"] < row["no_tsqr_s"] < row["magma_s"] < row["no_tc_s"]

    def test_fig10_speedups(self):
        res = run_experiment("fig10", sizes=(32768,))
        row = res.rows[0]
        assert row["speedup_wy_vs_magma"] > 2
        assert row["speedup_ec_vs_magma"] > 1
        assert row["speedup_wy_vs_zy"] > 1

    def test_fig11_speedup_band(self):
        res = run_experiment("fig11", sizes=(16384,))
        assert 1.2 < res.rows[0]["speedup"] < 3.0


class TestNumericExperiments:
    def test_table3_errors_bounded_by_tc_eps(self):
        res = run_experiment("table3", n=96, b=8, nb=32)
        assert len(res.rows) == 10
        for row in res.rows:
            assert row["backward_error"] < 5e-4   # TC machine epsilon
            assert row["orthogonality"] < 5e-4

    def test_table3_fp64_is_exact(self):
        res = run_experiment("table3", n=64, b=8, nb=16, precision="fp64")
        for row in res.rows:
            assert row["backward_error"] < 1e-13

    def test_table4_tc_worse_than_fp32(self):
        res = run_experiment("table4", n=96, b=8, nb=32)
        assert len(res.rows) == 10
        for row in res.rows:
            assert row["tensor_core"] < 1e-4
            assert row["fp32_magma_like"] < row["tensor_core"]

    def test_table3_row_labels(self):
        res = run_experiment("table3", n=64, b=8, nb=16)
        labels = [r["matrix"] for r in res.rows]
        assert labels[0] == "Normal" and "SVD_Geo 1e5" in labels


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table3" in out

    def test_run_selected_ci(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--scale", "ci", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "gemm_time_s" in out

    def test_unknown_name_errors(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])


class TestCliOutput:
    def test_output_file_written(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_file = tmp_path / "report.md"
        assert main(["--scale", "ci", "--output", str(out_file), "table1", "fig5"]) == 0
        capsys.readouterr()
        text = out_file.read_text()
        assert "# Reproduction output" in text
        assert "table1" in text and "fig5" in text
