"""Tests for the eigensolver extensions: QDWH, inverse iteration,
partial bandwidth reduction, and the syr2k engine path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig import (
    eigvals_bisect,
    qdwh_eig,
    qdwh_polar,
    reduce_bandwidth,
    tridiag_inverse_iteration,
)
from repro.errors import ConfigurationError, ShapeError
from repro.gemm import Fp64Engine, SgemmEngine, TensorCoreEngine
from repro.gemm.trace import GemmRecord
from repro.la import bandwidth_of, extract_band, tridiag_to_dense
from repro.sbr import sbr_zy
from tests.conftest import random_symmetric


class TestQdwhPolar:
    def test_random_rectangular(self, rng):
        a = rng.standard_normal((40, 25))
        u, h, its = qdwh_polar(a)
        np.testing.assert_allclose(u.T @ u, np.eye(25), atol=1e-13)
        np.testing.assert_allclose(u @ h, a, atol=1e-12)
        np.testing.assert_array_equal(h, h.T)
        assert its <= 8

    def test_ill_conditioned_converges_in_six(self, rng):
        u0, _ = np.linalg.qr(rng.standard_normal((30, 30)))
        s = np.geomspace(1.0, 1e-10, 30)
        a = (u0 * s) @ u0.T
        u, h, its = qdwh_polar(a)
        assert its <= 7  # the QDWH hallmark: <= 6-7 for kappa up to 1e16
        np.testing.assert_allclose(u.T @ u, np.eye(30), atol=1e-12)

    def test_h_positive_semidefinite(self, rng):
        a = rng.standard_normal((20, 12))
        _, h, _ = qdwh_polar(a)
        assert np.linalg.eigvalsh(h).min() > -1e-12

    def test_orthogonal_input_is_fixed_point(self, rng):
        q0, _ = np.linalg.qr(rng.standard_normal((16, 16)))
        u, h, _ = qdwh_polar(q0)
        np.testing.assert_allclose(u, q0, atol=1e-12)
        np.testing.assert_allclose(h, np.eye(16), atol=1e-12)

    def test_matches_svd_polar(self, rng):
        a = rng.standard_normal((18, 18))
        u, h, _ = qdwh_polar(a)
        uu, s, vt = np.linalg.svd(a)
        u_ref = uu @ vt
        np.testing.assert_allclose(u, u_ref, atol=1e-11)

    def test_rejects_wide(self, rng):
        with pytest.raises(ShapeError):
            qdwh_polar(rng.standard_normal((4, 8)))

    def test_rejects_rank_deficient(self, rng):
        a = np.zeros((8, 3))
        a[:, 0] = 1.0
        with pytest.raises(ShapeError):
            qdwh_polar(a)


class TestQdwhEig:
    @pytest.mark.parametrize("n", [10, 40, 90])
    def test_matches_lapack(self, rng, n):
        a = random_symmetric(n, rng)
        lam, v = qdwh_eig(a)
        np.testing.assert_allclose(lam, np.linalg.eigvalsh(a), atol=1e-11)
        np.testing.assert_allclose(v.T @ v, np.eye(n), atol=1e-11)
        np.testing.assert_allclose(a @ v, v * lam, atol=1e-10)

    def test_near_identity(self, rng):
        a = np.eye(20) * 3.0 + 1e-15 * random_symmetric(20, rng)
        lam, v = qdwh_eig(a)
        np.testing.assert_allclose(lam, 3.0, atol=1e-12)

    def test_cross_check_two_stage(self, rng):
        # Independent eigensolver families agree — a strong mutual check.
        from repro.eig import syevd_2stage

        a = random_symmetric(64, rng)
        lam_q, _ = qdwh_eig(a)
        lam_t = syevd_2stage(a, b=8, nb=16, precision="fp64", want_vectors=False).eigenvalues
        np.testing.assert_allclose(lam_q, lam_t, atol=1e-10)

    def test_clustered_spectrum(self, rng):
        from repro.matrices import generate_symmetric

        a, lam_true = generate_symmetric(48, distribution="cluster1", cond=1e5, rng=rng)
        lam, v = qdwh_eig(a)
        np.testing.assert_allclose(np.sort(lam), lam_true, atol=1e-10)


class TestReduceBandwidth:
    @pytest.mark.parametrize("b,target", [(8, 4), (8, 1), (5, 3), (7, 7)])
    def test_partial_reduction(self, rng, b, target):
        a = extract_band(random_symmetric(40, rng), b)
        band, q = reduce_bandwidth(a, b, target=target)
        assert bandwidth_of(band, tol=1e-12) <= target
        np.testing.assert_allclose(q @ band @ q.T, a, atol=1e-12)

    def test_multi_step_equals_single_step(self, rng):
        a = extract_band(random_symmetric(32, rng), 6)
        one, _ = reduce_bandwidth(a, 6, target=2, want_q=False)
        mid, _ = reduce_bandwidth(a, 6, target=4, want_q=False)
        two, _ = reduce_bandwidth(mid, 4, target=2, want_q=False)
        np.testing.assert_allclose(
            np.linalg.eigvalsh(one), np.linalg.eigvalsh(two), atol=1e-11
        )

    def test_invalid_target(self, rng):
        a = extract_band(random_symmetric(16, rng), 4)
        with pytest.raises(ShapeError):
            reduce_bandwidth(a, 4, target=0)
        with pytest.raises(ShapeError):
            reduce_bandwidth(a, 4, target=5)

    def test_no_q(self, rng):
        a = extract_band(random_symmetric(16, rng), 4)
        _, q = reduce_bandwidth(a, 4, target=2, want_q=False)
        assert q is None


class TestInverseIteration:
    def test_full_spectrum(self, rng):
        d = rng.standard_normal(60)
        e = rng.standard_normal(59)
        lam = eigvals_bisect(d, e)
        v = tridiag_inverse_iteration(d, e, lam)
        t = tridiag_to_dense(d, e)
        assert float(np.abs(t @ v - v * lam).max()) < 1e-10
        np.testing.assert_allclose(v.T @ v, np.eye(60), atol=1e-8)

    def test_selected_eigenpairs(self, rng):
        d = rng.standard_normal(50)
        e = rng.standard_normal(49)
        lam = eigvals_bisect(d, e, select=(10, 15))
        v = tridiag_inverse_iteration(d, e, lam)
        assert v.shape == (50, 5)
        t = tridiag_to_dense(d, e)
        assert float(np.abs(t @ v - v * lam).max()) < 1e-10

    def test_clustered(self, rng):
        d = np.ones(30)
        e = 1e-9 * rng.standard_normal(29)
        lam = eigvals_bisect(d, e)
        v = tridiag_inverse_iteration(d, e, lam)
        np.testing.assert_allclose(v.T @ v, np.eye(30), atol=1e-10)

    def test_glued_wilkinson(self, rng):
        d = np.tile(np.abs(np.arange(-5, 6)), 4)[:40].astype(float)
        e = np.ones(39)
        lam = eigvals_bisect(d, e)
        v = tridiag_inverse_iteration(d, e, lam)
        t = tridiag_to_dense(d, e)
        assert float(np.abs(t @ v - v * lam).max()) < 1e-9
        np.testing.assert_allclose(v.T @ v, np.eye(40), atol=1e-8)

    def test_shape_checks(self, rng):
        with pytest.raises(ShapeError):
            tridiag_inverse_iteration(np.ones(4), np.ones(4), [1.0])


class TestSyr2k:
    def test_numeric_equivalence(self, rng):
        y = rng.standard_normal((12, 4))
        z = rng.standard_normal((12, 4))
        out = Fp64Engine().syr2k(y, z)
        np.testing.assert_allclose(out, y @ z.T + z @ y.T, atol=1e-13)
        np.testing.assert_array_equal(out, out.T)

    def test_recorded_as_single_syr2k(self, rng):
        eng = SgemmEngine(record=True)
        eng.syr2k(rng.standard_normal((8, 3)), rng.standard_normal((8, 3)), tag="t")
        assert len(eng.trace) == 1
        rec = eng.trace[0]
        assert rec.op == "syr2k" and rec.shape == (8, 8, 3)

    def test_record_validation(self):
        with pytest.raises(ValueError):
            GemmRecord(4, 5, 2, op="syr2k")  # non-square output
        with pytest.raises(ValueError):
            GemmRecord(4, 4, 2, op="trmm")

    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            SgemmEngine().syr2k(rng.standard_normal((8, 3)), rng.standard_normal((7, 3)))

    def test_sbr_zy_with_syr2k_matches(self, rng):
        a = random_symmetric(64, rng)
        res_g = sbr_zy(a, 8, engine=Fp64Engine(), want_q=True)
        res_s = sbr_zy(a, 8, engine=Fp64Engine(), want_q=True, use_syr2k=True)
        np.testing.assert_allclose(res_g.band, res_s.band, atol=1e-11)

    def test_sbr_zy_syr2k_trace(self, rng):
        from repro.gemm.symbolic import is_algorithm_tag, trace_sbr_zy

        a = random_symmetric(48, rng)
        eng = Fp64Engine(record=True)
        sbr_zy(a, 8, engine=eng, want_q=False, use_syr2k=True)
        rec = eng.trace.filter(lambda r: is_algorithm_tag(r.tag))
        sym = trace_sbr_zy(48, 8, want_q=False, use_syr2k=True)
        assert rec.shape_multiset_by_tag() == sym.shape_multiset_by_tag()
        assert any(r.op == "syr2k" for r in rec)

    def test_tc_engine_syr2k_precision(self, rng):
        y = rng.standard_normal((16, 4)).astype(np.float32)
        z = rng.standard_normal((16, 4)).astype(np.float32)
        exact = y.astype(np.float64) @ z.T.astype(np.float64)
        exact = exact + exact.T
        err = np.abs(TensorCoreEngine().syr2k(y, z) - exact).max()
        assert 1e-7 < err < 1e-1  # fp16-grade

    def test_model_prices_syr2k_cheaper_than_two_gemms(self):
        from repro.device import PerfModel

        pm = PerfModel()
        two = 2 * pm.gemm_time(8192, 8192, 128, "tc")
        one = pm.syr2k_time(8192, 128, "tc")
        assert one < two


class TestBlockedBulgeChase:
    @pytest.mark.parametrize(
        "n,b", [(10, 3), (40, 5), (64, 8), (33, 7), (12, 11), (50, 2), (65, 16), (9, 8)]
    )
    def test_similarity_and_orthogonality(self, rng, n, b):
        from repro.eig import bulge_chase
        from repro.la import tridiag_to_dense

        ab = extract_band(random_symmetric(n, rng), b)
        d, e, q = bulge_chase(ab, b, want_q=True, variant="blocked")
        t = tridiag_to_dense(d, e)
        np.testing.assert_allclose(q @ t @ q.T, ab, atol=1e-12)
        np.testing.assert_allclose(q.T @ q, np.eye(n), atol=1e-12)

    def test_matches_givens_spectrum(self, rng):
        from repro.eig import bulge_chase
        from repro.la import tridiag_to_dense

        ab = extract_band(random_symmetric(72, rng), 9)
        d1, e1, _ = bulge_chase(ab, 9, want_q=False, variant="givens")
        d2, e2, _ = bulge_chase(ab, 9, want_q=False, variant="blocked")
        np.testing.assert_allclose(
            np.linalg.eigvalsh(tridiag_to_dense(d1, e1)),
            np.linalg.eigvalsh(tridiag_to_dense(d2, e2)),
            atol=1e-11,
        )

    def test_bandwidth_one_passthrough(self, rng):
        from repro.eig import bulge_chase

        t_in = extract_band(random_symmetric(12, rng), 1)
        d, e, q = bulge_chase(t_in, 1, variant="blocked")
        np.testing.assert_array_equal(d, np.diagonal(t_in))
        np.testing.assert_array_equal(q, np.eye(12))

    def test_unknown_variant(self, rng):
        from repro.eig import bulge_chase

        with pytest.raises(ShapeError):
            bulge_chase(extract_band(random_symmetric(8, rng), 2), 2, variant="panel")

    def test_no_q(self, rng):
        from repro.eig import bulge_chase

        _, _, q = bulge_chase(extract_band(random_symmetric(24, rng), 4), 4,
                              want_q=False, variant="blocked")
        assert q is None


class TestSyevdSelected:
    def test_index_selection(self, rng):
        from repro.eig import syevd_selected
        from repro.matrices import generate_symmetric

        a, lam_true = generate_symmetric(96, distribution="arith", cond=100, rng=rng)
        res = syevd_selected(a, select=(90, 96), b=8, nb=32, precision="fp64")
        np.testing.assert_allclose(res.eigenvalues, lam_true[90:96], atol=1e-9)
        x = res.eigenvectors
        np.testing.assert_allclose(a @ x, x * res.eigenvalues, atol=1e-8)
        np.testing.assert_allclose(x.T @ x, np.eye(6), atol=1e-8)

    def test_interval_selection(self, rng):
        from repro.eig import syevd_selected
        from repro.matrices import generate_symmetric

        a, lam_true = generate_symmetric(64, distribution="uniform", rng=rng)
        res = syevd_selected(a, interval=(0.0, 0.5), b=8, nb=16, precision="fp64")
        expected = lam_true[(lam_true > 0.0) & (lam_true <= 0.5)]
        np.testing.assert_allclose(np.sort(res.eigenvalues), np.sort(expected), atol=1e-9)

    def test_values_only(self, rng):
        from repro.eig import syevd_selected

        a = random_symmetric(48, rng)
        res = syevd_selected(a, select=(0, 5), b=4, nb=16, want_vectors=False)
        assert res.eigenvectors is None
        assert res.eigenvalues.shape == (5,)

    def test_empty_interval(self, rng):
        from repro.eig import syevd_selected

        a = random_symmetric(32, rng)
        res = syevd_selected(a, interval=(1e6, 1e7), b=4, nb=8, precision="fp64")
        assert res.eigenvalues.size == 0
        assert res.eigenvectors.shape == (32, 0)

    def test_tc_precision_selected(self, rng):
        from repro.eig import syevd_selected
        from repro.matrices import generate_symmetric

        a, lam_true = generate_symmetric(96, distribution="geo", cond=1e3, rng=rng)
        res = syevd_selected(a, select=(0, 10), b=8, nb=32, precision="fp16_tc")
        assert np.abs(res.eigenvalues - lam_true[:10]).max() < 5e-3

    def test_matches_full_solver(self, rng):
        from repro.eig import syevd_2stage, syevd_selected

        a = random_symmetric(64, rng)
        full = syevd_2stage(a, b=8, nb=16, precision="fp64", want_vectors=False)
        sel = syevd_selected(a, select=(20, 30), b=8, nb=16, precision="fp64",
                             want_vectors=False)
        np.testing.assert_allclose(sel.eigenvalues, full.eigenvalues[20:30], atol=1e-9)

    def test_bad_method(self, rng):
        from repro.errors import ConfigurationError
        from repro.eig import syevd_selected

        with pytest.raises(ConfigurationError):
            syevd_selected(random_symmetric(16, rng), b=4, method="xy")
