"""Tests for end-to-end request tracing (``repro.obs.tracing``).

The tentpole contract: every served job carries one causal trace —
minted at submit, threaded through admission, queue wait, attempts,
preemption, backoff, and *across checkpoint resume* — and the whole
soak renders as a single Chrome-trace timeline with per-worker lanes
and flow arrows.  Covers:

- TraceContext construction, immutability, (de)serialization, coercion;
- lifecycle_span: emits into an active collector, no-op when off;
- the continuity checker's invariants (positive + negative cases);
- single-job, preempted, and crash-resumed jobs keeping one trace id
  end to end through the serve manifest;
- trace persistence in the PR-4 run-dir header and rehydration by
  ``repro.ckpt.driver.resume``;
- SLO accounting: good/bad tallies, burn rate, deadline counters, TTFA,
  and the gauges landing in the Prometheus exposition;
- the serve Chrome exporter (lanes, flows, schema) and the span-level
  flow arrows in ``to_chrome_trace``;
- the ``python -m repro.obs trace`` subcommand and queue-wait bench
  columns / per-tag launch counts (satellites).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from conftest import random_symmetric
from repro.obs import spans as obs_spans
from repro.obs.analytics import serve_trace_to_chrome, to_chrome_trace
from repro.obs.live import MetricsRegistry
from repro.obs.live.sinks import parse_prometheus, render_prometheus
from repro.obs.tracing import (
    TraceContext,
    check_trace_continuity,
    lifecycle_span,
    load_serve_manifest,
    render_trace_summary,
)
from repro.serve import EvdService, JobSpec, RetryPolicy
from repro.serve.job import Job
from repro.serve.slo import DEFAULT_TARGET, SloPolicy, SloTracker


# ---------------------------------------------------------------------------
# TraceContext
# ---------------------------------------------------------------------------
class TestTraceContext:
    def test_new_mints_root(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 16
        assert len(ctx.span_id) == 16
        assert ctx.parent_id is None

    def test_child_extends_same_trace(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_immutable(self):
        ctx = TraceContext.new()
        with pytest.raises(AttributeError):
            ctx.trace_id = "x"

    def test_dict_round_trip(self):
        child = TraceContext.new().child()
        back = TraceContext.from_dict(child.to_dict())
        assert back == child
        root = TraceContext.new()
        assert "parent_id" not in root.to_dict()
        assert TraceContext.from_dict(root.to_dict()) == root

    def test_coerce(self):
        ctx = TraceContext.new()
        assert TraceContext.coerce(ctx) is ctx
        assert TraceContext.coerce(ctx.to_dict()) == ctx
        assert TraceContext.coerce(None) is None
        assert TraceContext.coerce({}) is None
        with pytest.raises(TypeError):
            TraceContext.coerce(42)

    def test_span_meta_carries_ids(self):
        child = TraceContext.new().child()
        meta = child.span_meta()
        assert meta == {
            "trace_id": child.trace_id,
            "span_id": child.span_id,
            "parent_id": child.parent_id,
        }


# ---------------------------------------------------------------------------
# lifecycle_span
# ---------------------------------------------------------------------------
class TestLifecycleSpan:
    def test_noop_without_collector(self):
        assert obs_spans._active is None
        lifecycle_span("serve.admit", trace=TraceContext.new())  # no raise

    def test_emits_finished_span_with_trace_meta(self):
        ctx = TraceContext.new().child()
        with obs_spans.collect() as session:
            lifecycle_span(
                "serve.attempt", 0.25, trace=ctx, worker="w1",
                job="job-1", attempt=2,
            )
        spans = [s for s in session.spans if s.name == "serve.attempt"]
        assert len(spans) == 1
        s = spans[0]
        assert s.duration == 0.25
        assert s.start >= 0.0
        assert s.meta["trace_id"] == ctx.trace_id
        assert s.meta["span_id"] == ctx.span_id
        assert s.meta["parent_id"] == ctx.parent_id
        assert s.meta["worker"] == "w1"
        assert s.meta["job"] == "job-1"
        assert s.meta["attempt"] == 2


# ---------------------------------------------------------------------------
# continuity checker (synthetic records)
# ---------------------------------------------------------------------------
def _record(job="job-1", trace=None, timeline=(), **kw):
    rec = {
        "kind": "serve_job",
        "job": job,
        "state": kw.pop("state", "done"),
        "preemptions": kw.pop("preemptions", 0),
        "trace": trace,
        "timeline": list(timeline),
    }
    rec.update(kw)
    return rec


def _ok_timeline(root="r0"):
    return [
        {"name": "serve.admit", "t": 0.0, "dur": 0.0,
         "span_id": "s1", "parent_id": root},
        {"name": "serve.queue_wait", "t": 0.0, "dur": 0.01,
         "span_id": "s2", "parent_id": root},
        {"name": "serve.attempt", "t": 0.01, "dur": 0.1, "attempt": 1,
         "span_id": "s3", "parent_id": root, "worker": "w0"},
        {"name": "serve.result", "t": 0.11, "dur": 0.0,
         "span_id": "s4", "parent_id": root},
    ]


class TestContinuityChecker:
    def test_clean_records_pass(self):
        recs = [_record(trace={"trace_id": "t1", "span_id": "r0"},
                        timeline=_ok_timeline())]
        assert check_trace_continuity(recs) == []

    def test_missing_trace_flagged(self):
        problems = check_trace_continuity([_record(trace=None)])
        assert problems and "missing trace" in problems[0]

    def test_duplicate_trace_id_flagged(self):
        shared = {"trace_id": "t1", "span_id": "r0"}
        recs = [
            _record(job="job-1", trace=dict(shared), timeline=_ok_timeline()),
            _record(job="job-2", trace=dict(shared), timeline=_ok_timeline()),
        ]
        assert any("already used" in p for p in check_trace_continuity(recs))

    def test_missing_lifecycle_events_flagged(self):
        recs = [_record(trace={"trace_id": "t1", "span_id": "r0"},
                        timeline=_ok_timeline()[:1])]
        problems = check_trace_continuity(recs)
        assert any("serve.attempt" in p for p in problems)
        assert any("serve.result" in p for p in problems)

    def test_cancelled_while_queued_is_exempt(self):
        recs = [_record(state="cancelled",
                        trace={"trace_id": "t1", "span_id": "r0"},
                        timeline=_ok_timeline()[:1])]
        assert check_trace_continuity(recs) == []

    def test_orphan_parent_flagged(self):
        tl = _ok_timeline()
        tl[2]["parent_id"] = "not-a-span"
        recs = [_record(trace={"trace_id": "t1", "span_id": "r0"},
                        timeline=tl)]
        assert any("not in trace" in p for p in check_trace_continuity(recs))

    def test_preempted_without_resume_flagged(self):
        recs = [_record(preemptions=1,
                        trace={"trace_id": "t1", "span_id": "r0"},
                        timeline=_ok_timeline())]
        problems = check_trace_continuity(recs)
        assert any("serve.preempt" in p for p in problems)
        assert any("serve.resume" in p for p in problems)

    def test_resume_must_link_to_prior_attempt(self):
        tl = _ok_timeline()
        tl.insert(3, {"name": "serve.resume", "t": 0.1, "dur": 0.0,
                      "span_id": "s9", "parent_id": "r0",
                      "link_from": "bogus"})
        recs = [_record(trace={"trace_id": "t1", "span_id": "r0"},
                        timeline=tl)]
        assert any("not a prior attempt" in p
                   for p in check_trace_continuity(recs))
        tl[3]["link_from"] = "s3"
        # forward-linked is fine: the checker accepts any attempt span id
        tl2 = list(tl)
        assert not any("link" in p for p in check_trace_continuity(
            [_record(trace={"trace_id": "t1", "span_id": "r0"},
                     timeline=tl2)]))

    def test_summary_renders_verdict(self):
        recs = [_record(wall=0.5, priority="batch", attempts=1,
                        trace={"trace_id": "t1", "span_id": "r0"},
                        timeline=_ok_timeline())]
        out = render_trace_summary(recs)
        assert "trace continuity: ok" in out
        assert "attempt[1]" in out
        out_bad = render_trace_summary([_record(trace=None)])
        assert "continuity problem" in out_bad


# ---------------------------------------------------------------------------
# end-to-end: the service threads one trace per job
# ---------------------------------------------------------------------------
def _service(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("spool_dir", str(tmp_path / "spool"))
    kw.setdefault("scheduler_interval", 0.01)
    kw.setdefault("tick", 0.01)
    return EvdService(**kw)


class TestServeTracing:
    def test_single_job_trace_lifecycle(self, rng, tmp_path):
        with _service(tmp_path) as svc:
            jid = svc.submit(random_symmetric(12, rng), tag="one")
            res = svc.result(jid, timeout=60.0)
        assert res.outcome == "done"
        records = load_serve_manifest(svc.spool_dir)
        assert len(records) == 1
        rec = records[0]
        assert check_trace_continuity(records) == []
        names = [ev["name"] for ev in rec["timeline"]]
        assert names[0] == "serve.admit"
        assert "serve.queue_wait" in names
        assert "serve.attempt" in names
        assert names[-1] == "serve.result"
        # every event is a child of the job's root span
        root = rec["trace"]["span_id"]
        assert all(ev["parent_id"] == root for ev in rec["timeline"])

    def test_preempted_job_resumes_on_same_trace(self, rng, tmp_path):
        with _service(tmp_path, coalesce=False) as svc:
            batch = svc.submit(random_symmetric(48, rng), b=4,
                               priority="batch", checkpointed=True)
            deadline = time.monotonic() + 10.0
            while svc.job(batch).state == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.002)
            inter = svc.submit(random_symmetric(12, rng),
                               priority="interactive")
            assert svc.result(inter, timeout=120.0).outcome == "done"
            res = svc.result(batch, timeout=120.0)
        assert res.ok and res.preemptions >= 1
        records = load_serve_manifest(svc.spool_dir)
        assert check_trace_continuity(records) == []
        rec = next(r for r in records if r["job"] == batch)
        names = [ev["name"] for ev in rec["timeline"]]
        assert "serve.preempt" in names
        assert "serve.resume" in names
        # the resume is flow-linked to the preempted attempt's span
        resume = next(ev for ev in rec["timeline"]
                      if ev["name"] == "serve.resume")
        preempted_attempt = next(
            ev for ev in rec["timeline"]
            if ev["name"] == "serve.attempt"
            and ev.get("outcome") == "preempted")
        assert resume["link_from"] == preempted_attempt["span_id"]
        # one trace id across both attempts
        tids = {rec["trace"]["trace_id"]}
        assert len(tids) == 1

    def test_crash_retry_stays_on_one_trace(self, rng, tmp_path):
        from repro.resilience.crash import CrashFaultSpec, CrashInjector

        with _service(tmp_path) as svc:
            svc.fault_factory = (
                lambda job: CrashInjector(CrashFaultSpec(
                    site="ckpt.save.*.post", call_index=1, kind="kill"))
                if job.attempts == 1 else None
            )
            jid = svc.submit(random_symmetric(32, rng), b=4,
                             checkpointed=True,
                             retry=RetryPolicy(max_attempts=3,
                                               backoff_base=0.001))
            res = svc.result(jid, timeout=120.0)
        assert res.outcome == "done" and res.attempts == 2
        records = load_serve_manifest(svc.spool_dir)
        assert check_trace_continuity(records) == []
        rec = records[0]
        names = [ev["name"] for ev in rec["timeline"]]
        assert "serve.backoff" in names
        assert "serve.resume" in names
        attempts = [ev for ev in rec["timeline"]
                    if ev["name"] == "serve.attempt"]
        assert [ev["attempt"] for ev in attempts] == [1, 2]
        assert attempts[0]["outcome"] == "crash"
        assert attempts[1]["outcome"] == "done"
        # the trace context also reached the persisted run header
        run_json = os.path.join(rec["run_dir"], "run.json")
        header = json.load(open(run_json))
        assert header["trace"]["trace_id"] == rec["trace"]["trace_id"]

    def test_queue_wait_columns_in_latency_rows(self, rng, tmp_path):
        with _service(tmp_path) as svc:
            jid = svc.submit(random_symmetric(12, rng))
            assert svc.result(jid, timeout=60.0).ok
            rows = svc.latency_rows()
        assert rows
        row = rows[0]
        assert "queue_wait_p50" in row and "queue_wait_p99" in row
        assert row["queue_wait_p50"] >= 0.0
        assert len(row["queue_wait"]) == row["jobs"]

    def test_service_writes_prometheus_snapshot(self, rng, tmp_path):
        with _service(tmp_path) as svc:
            jid = svc.submit(random_symmetric(12, rng))
            assert svc.result(jid, timeout=60.0).ok
        series = parse_prometheus(
            open(os.path.join(svc.spool_dir, "metrics.prom")).read())
        assert any(k.startswith("repro_serve_slo_burn_rate") for k in series)
        assert any(k.startswith("repro_serve_slo_good_total") for k in series)
        assert any(k.startswith("repro_serve_ttfa_seconds") for k in series)


# ---------------------------------------------------------------------------
# trace persistence in the PR-4 run dir
# ---------------------------------------------------------------------------
class TestCheckpointTracePersistence:
    def test_driver_persists_and_resume_rehydrates(self, rng, tmp_path):
        from repro.ckpt import driver as ckpt_driver
        from repro.ckpt.store import CheckpointConfig, CheckpointManager
        from repro.eig.driver import syevd_2stage
        from repro.resilience.crash import (
            CrashFaultSpec,
            CrashInjector,
            SimulatedCrashError,
        )

        a = random_symmetric(32, rng)
        ctx = TraceContext.new()
        run_dir = str(tmp_path / "run")
        crash = CrashInjector(CrashFaultSpec(
            site="ckpt.save.*.post", call_index=2, kind="kill"))
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(
                a, b=4,
                checkpoint=CheckpointConfig(run_dir=run_dir, crash=crash),
                trace=ctx,
            )
        # the kwarg-passed context landed in the run header
        stored = CheckpointManager(CheckpointConfig(run_dir=run_dir)).trace()
        assert stored["trace_id"] == ctx.trace_id

        with obs_spans.collect() as session:
            res = ckpt_driver.resume(run_dir)
        assert res.eigenvalues is not None
        roots = [s for s in session.spans if s.name == "syevd"]
        assert roots and roots[0].meta["trace_id"] == ctx.trace_id

    def test_explicit_trace_override_wins_on_resume(self, rng, tmp_path):
        from repro.ckpt import driver as ckpt_driver
        from repro.ckpt.store import CheckpointConfig
        from repro.eig.driver import syevd_2stage
        from repro.resilience.crash import (
            CrashFaultSpec,
            CrashInjector,
            SimulatedCrashError,
        )

        a = random_symmetric(24, rng)
        run_dir = str(tmp_path / "run")
        crash = CrashInjector(CrashFaultSpec(
            site="ckpt.save.*.post", call_index=1, kind="kill"))
        with pytest.raises(SimulatedCrashError):
            syevd_2stage(
                a, b=4,
                checkpoint=CheckpointConfig(run_dir=run_dir, crash=crash),
                trace=TraceContext.new(),
            )
        fresh = TraceContext.new()
        with obs_spans.collect() as session:
            ckpt_driver.resume(run_dir, trace=fresh)
        roots = [s for s in session.spans if s.name == "syevd"]
        assert roots and roots[0].meta["trace_id"] == fresh.trace_id


# ---------------------------------------------------------------------------
# SLO accounting
# ---------------------------------------------------------------------------
class _FakeResult:
    def __init__(self, ok=True, outcome="done", deadline_missed=False):
        self.ok = ok
        self.outcome = outcome
        self.deadline_missed = deadline_missed


class _FakeJob:
    def __init__(self, priority="standard", deadline=None, **kw):
        self.spec = type("S", (), {
            "priority": priority, "deadline_seconds": deadline,
        })()
        self.result = _FakeResult(**kw)


class TestSloTracker:
    def test_burn_rate_math(self):
        reg = MetricsRegistry()
        slo = SloTracker(reg, SloPolicy(default_target=0.9))
        for _ in range(9):
            slo.record_terminal(_FakeJob())
        slo.record_terminal(_FakeJob(ok=False, outcome="failed"))
        # 1 bad / 10 total = 0.1 observed; allowed = 0.1 → burn rate 1.0
        assert reg.gauge_value(
            "repro_serve_slo_burn_rate", priority="standard"
        ) == pytest.approx(1.0)
        assert reg.gauge_value(
            "repro_serve_slo_error_budget_remaining", priority="standard"
        ) == pytest.approx(0.0)
        rows = slo.rows()
        assert rows == [{
            "priority": "standard", "good": 9, "bad": 1, "target": 0.9,
            "burn_rate": pytest.approx(1.0),
            "error_budget_remaining": pytest.approx(0.0),
        }]

    def test_deadline_counters_only_for_deadlined_jobs(self):
        reg = MetricsRegistry()
        slo = SloTracker(reg)
        slo.record_terminal(_FakeJob(deadline=1.0))
        slo.record_terminal(_FakeJob(deadline=1.0, deadline_missed=True))
        slo.record_terminal(_FakeJob())  # no deadline: no hit/miss counted
        assert reg.counter_value(
            "repro_serve_slo_deadline_hits_total", priority="standard") == 1
        assert reg.counter_value(
            "repro_serve_slo_deadline_misses_total", priority="standard") == 1
        # a deadline miss is a bad job even when the run itself finished
        assert reg.counter_value(
            "repro_serve_slo_bad_total", priority="standard") == 1

    def test_cancelled_jobs_do_not_burn_budget(self):
        reg = MetricsRegistry()
        slo = SloTracker(reg)
        slo.record_terminal(_FakeJob(ok=False, outcome="cancelled"))
        assert slo.rows() == []

    def test_default_target(self):
        assert SloPolicy().target("anything") == DEFAULT_TARGET
        with pytest.raises(ValueError):
            SloPolicy(targets={"batch": 1.5}).target("batch")

    def test_gauges_round_trip_through_prometheus(self):
        reg = MetricsRegistry()
        slo = SloTracker(reg)
        slo.record_first_attempt("batch", 0.05)
        slo.record_terminal(_FakeJob(priority="batch"))
        series = parse_prometheus(render_prometheus(reg.snapshot()))
        assert series['repro_serve_slo_burn_rate{priority="batch"}'] == 0.0
        assert series['repro_serve_slo_good_total{priority="batch"}'] == 1.0
        assert any(k.startswith("repro_serve_ttfa_seconds") for k in series)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
class TestServeChromeExport:
    def _soak_records(self, rng, tmp_path):
        with _service(tmp_path, workers=2) as svc:
            ids = [svc.submit(random_symmetric(12, rng), tag=f"j{i}")
                   for i in range(4)]
            for jid in ids:
                assert svc.result(jid, timeout=60.0) is not None
        return load_serve_manifest(svc.spool_dir)

    def test_lanes_and_schema(self, rng, tmp_path):
        records = self._soak_records(rng, tmp_path)
        trace = serve_trace_to_chrome(records)
        evs = trace["traceEvents"]
        assert all({"name", "ph", "pid", "tid"} <= set(e) for e in evs)
        lanes = {e["args"]["name"] for e in evs if e["name"] == "thread_name"}
        assert "service" in lanes
        assert any(l.startswith("serve-worker-") for l in lanes)
        # attempts render on worker lanes, admission on the service lane
        attempts = [e for e in evs if e.get("cat") == "serve"
                    and e["name"].startswith("serve.attempt")]
        assert attempts and all(e["tid"] != 1 for e in attempts)
        admits = [e for e in evs if e["name"] == "serve.admit"]
        assert admits and all(e["tid"] == 1 for e in admits)
        assert trace["otherData"]["jobs"] == len(records)
        assert trace["otherData"]["traces"] == len(records)

    def test_flow_arrows_link_attempts(self):
        root = "r0"
        rec = _record(
            job="job-1", preemptions=1,
            trace={"trace_id": "tX", "span_id": root},
            timeline=[
                {"name": "serve.admit", "t": 0.0, "dur": 0.0,
                 "span_id": "s1", "parent_id": root},
                {"name": "serve.attempt", "t": 0.01, "dur": 0.1,
                 "attempt": 1, "outcome": "preempted", "worker": "w0",
                 "span_id": "s2", "parent_id": root},
                {"name": "serve.preempt", "t": 0.11, "dur": 0.0,
                 "span_id": "s3", "parent_id": root},
                {"name": "serve.resume", "t": 0.2, "dur": 0.0,
                 "span_id": "s4", "parent_id": root, "link_from": "s2"},
                {"name": "serve.attempt", "t": 0.2, "dur": 0.1,
                 "attempt": 2, "outcome": "done", "worker": "w1",
                 "span_id": "s5", "parent_id": root},
                {"name": "serve.result", "t": 0.3, "dur": 0.0,
                 "span_id": "s6", "parent_id": root},
            ])
        evs = serve_trace_to_chrome([rec])["traceEvents"]
        starts = [e for e in evs if e.get("cat") == "serve.flow"
                  and e["ph"] == "s"]
        finishes = [e for e in evs if e.get("cat") == "serve.flow"
                    and e["ph"] == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"] == "tX"
        assert finishes[0]["bp"] == "e"
        # arrow spans the two different worker lanes
        assert starts[0]["tid"] != finishes[0]["tid"]
        # attempt names carry the attempt index
        names = {e["name"] for e in evs if e.get("cat") == "serve"}
        assert {"serve.attempt[1]", "serve.attempt[2]"} <= names

    def test_accepts_spool_path(self, rng, tmp_path):
        self._soak_records(rng, tmp_path)
        trace = serve_trace_to_chrome(str(tmp_path / "spool"))
        assert trace["otherData"]["jobs"] == 4


class TestSpanFlowArrows:
    def test_to_chrome_trace_links_same_trace_spans(self, tmp_path):
        from repro.obs.manifest import write_manifest

        ctx = TraceContext.new()
        with obs_spans.collect() as session:
            lifecycle_span("serve.attempt", 0.1, trace=ctx.child())
            lifecycle_span("serve.attempt", 0.1, trace=ctx.child())
        path = write_manifest(
            session, str(tmp_path / "m.jsonl"),
            trace_context=ctx.to_dict(),
        )
        trace = to_chrome_trace(path)
        flows = [e for e in trace["traceEvents"] if e.get("cat") == "trace"]
        assert len(flows) == 2  # one s + one f for the pair
        assert {e["ph"] for e in flows} == {"s", "f"}
        assert all(e["id"] == ctx.trace_id for e in flows)
        assert trace["otherData"]["trace"]["trace_id"] == ctx.trace_id


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestTraceCli:
    def _spool(self, rng, tmp_path):
        with _service(tmp_path) as svc:
            jid = svc.submit(random_symmetric(12, rng))
            assert svc.result(jid, timeout=60.0).ok
        return svc.spool_dir

    def test_summary_and_check_pass(self, rng, tmp_path, capsys):
        from repro.obs.__main__ import main

        spool = self._spool(rng, tmp_path)
        assert main(["trace", spool, "--check"]) == 0
        out = capsys.readouterr().out
        assert "trace continuity: ok" in out

    def test_chrome_export_to_file(self, rng, tmp_path, capsys):
        from repro.obs.__main__ import main

        spool = self._spool(rng, tmp_path)
        out_path = str(tmp_path / "trace.json")
        assert main(["trace", spool, "--chrome", "-o", out_path]) == 0
        trace = json.load(open(out_path))
        assert trace["traceEvents"]
        assert trace["otherData"]["jobs"] == 1

    def test_check_fails_on_broken_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        spool = tmp_path / "spool"
        spool.mkdir()
        with open(spool / "manifest.jsonl", "w") as fh:
            fh.write(json.dumps(_record(trace=None)) + "\n")
        assert main(["trace", str(spool), "--check"]) == 2
        assert "missing trace" in capsys.readouterr().err

    def test_missing_spool_errors(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["trace", str(tmp_path / "nope")]) == 1


# ---------------------------------------------------------------------------
# satellite: per-tag gemm launch counts in the report
# ---------------------------------------------------------------------------
class TestLaunchesColumn:
    def test_gemm_summary_counts_launches_per_tag(self):
        with obs_spans.collect() as session:
            with obs_spans.span("syevd"):
                obs_spans.gemm_event(8, 8, 8, seconds=1e-3, tag="panel",
                                     engine="test", op="gemm")
                obs_spans.gemm_event(8, 8, 8, seconds=1e-3, tag="panel",
                                     engine="test", op="gemm_batched",
                                     batch=4)
        summary = session.gemm_summary()
        slot = summary["by_tag"]["panel"]
        assert slot["calls"] == 5      # batched event counts its stack
        assert slot["launches"] == 2   # but is one engine launch

    def test_report_renders_launches_with_dash_fallback(self, tmp_path):
        from repro.obs.manifest import load_manifest, write_manifest
        from repro.obs.report import render_report

        with obs_spans.collect() as session:
            with obs_spans.span("syevd"):
                obs_spans.gemm_event(8, 8, 8, seconds=1e-3, tag="panel",
                                     engine="test", op="gemm")
        path = write_manifest(session, str(tmp_path / "m.jsonl"))
        out = render_report(path)
        assert "launches" in out

        # pre-launches manifests (no "launches" slot) render a dash
        man = load_manifest(path)
        for slot in man.gemm_summary["by_tag"].values():
            slot.pop("launches", None)
        out_old = render_report(man)
        assert "launches" in out_old  # header still present
        row = [l for l in out_old.splitlines() if "panel" in l][0]
        assert " - " in row
