"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test randomness."""
    return np.random.default_rng(12345)


def random_symmetric(n: int, rng: np.random.Generator, *, dtype=np.float64) -> np.ndarray:
    """Random dense symmetric matrix with entries O(1)."""
    a = rng.standard_normal((n, n))
    return ((a + a.T) * 0.5).astype(dtype)


def assert_orthonormal_columns(q: np.ndarray, *, atol: float = 1e-12) -> None:
    """Assert Q^T Q == I within tolerance."""
    n = q.shape[1]
    gram = q.T @ q
    np.testing.assert_allclose(gram, np.eye(n), atol=atol)


def assert_upper_triangular(r: np.ndarray, *, atol: float = 0.0) -> None:
    """Assert the strictly-lower part of R is (numerically) zero."""
    lower = np.tril(r, k=-1)
    assert np.max(np.abs(lower), initial=0.0) <= atol
