"""Tests for the calibrated A100 performance model.

Beyond unit behaviour, these tests pin the *paper-structure* facts the
model must reproduce: Table 1 anchors, the nb=1024 sweet spot (Fig 5),
the TC-only WY advantage and its crossover (Figs 6/7), panel ratios
(Fig 8), the ablation ordering (Fig 9), headline speedups (Fig 10), and
the ~2x EVD speedup (Fig 11).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import (
    A100Spec,
    DeviceSpec,
    PerfModel,
    TABLE1_K,
    TABLE1_SGEMM_OUTER,
    TABLE1_SGEMM_TS,
    TABLE1_TC_OUTER,
    TABLE1_TC_TS,
    ThroughputCurve,
)
from repro.errors import ConfigurationError
from repro.gemm import GemmRecord, GemmTrace
from repro.gemm.symbolic import trace_sbr_wy, trace_sbr_zy


@pytest.fixture(scope="module")
def pm() -> PerfModel:
    return PerfModel()


class TestThroughputCurve:
    def test_interpolates_anchors_exactly(self):
        curve = ThroughputCurve((32, 128, 512), (5.0, 20.0, 60.0))
        assert curve.rate(32) == pytest.approx(5e12)
        assert curve.rate(128) == pytest.approx(20e12)

    def test_log_interpolation_midpoint(self):
        curve = ThroughputCurve((64, 256), (10.0, 30.0))
        assert curve.rate(128) == pytest.approx(20e12)  # halfway in log2

    def test_clamped_outside(self):
        curve = ThroughputCurve((64, 256), (10.0, 30.0))
        assert curve.rate(1) == pytest.approx(10e12)
        assert curve.rate(10**6) == pytest.approx(30e12)

    def test_scaled(self):
        curve = ThroughputCurve((64, 256), (10.0, 30.0))
        assert curve.scaled(0.5).rate(64) == pytest.approx(5e12)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputCurve((64,), (10.0,))
        with pytest.raises(ValueError):
            ThroughputCurve((64, 32), (10.0, 5.0))
        with pytest.raises(ValueError):
            ThroughputCurve((32, 64), (10.0, -1.0))


class TestDeviceSpec:
    def test_a100_facts(self):
        assert A100Spec.tc_fp16_peak == pytest.approx(312e12)
        assert A100Spec.fp32_peak == pytest.approx(19.5e12)
        assert A100Spec.pcie_bandwidth == pytest.approx(12e9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                tc_fp16_peak=-1,
                fp32_peak=1,
                hbm_bandwidth=1,
                pcie_bandwidth=1,
                ec_tcgemm_rate=1,
            )


class TestGemmPricing:
    def test_table1_anchors_reproduced(self, pm):
        m = 32768
        for i, k in enumerate(TABLE1_K):
            assert pm.gemm_rate(m, k, m, "tc") / 1e12 == pytest.approx(TABLE1_TC_TS[i])
            assert pm.gemm_rate(m, m, k, "tc") / 1e12 == pytest.approx(TABLE1_TC_OUTER[i])
            assert pm.gemm_rate(m, k, m, "sgemm") / 1e12 == pytest.approx(TABLE1_SGEMM_TS[i])
            assert pm.gemm_rate(m, m, k, "sgemm") / 1e12 == pytest.approx(TABLE1_SGEMM_OUTER[i])

    def test_family_selection(self, pm):
        # Contraction smallest -> outer curve (faster on TC at k=128).
        outer = pm.gemm_rate(4096, 4096, 128, "tc")
        ts = pm.gemm_rate(4096, 128, 4096, "tc")
        assert outer > ts

    def test_time_includes_launch(self, pm):
        t = pm.gemm_time(8, 8, 8, "tc")
        assert t >= pm.spec.kernel_launch

    def test_memory_roofline_floor(self, pm):
        # A 1×1×huge dot product is memory bound, not rate bound.
        t = pm.gemm_time(1, 1, 10**7, "sgemm")
        assert t >= 4.0 * 2 * 10**7 / pm.spec.hbm_bandwidth

    def test_ec_between_sgemm_and_tc(self, pm):
        # EC never below SGEMM (floor) and never above plain TC.
        for k in (32, 128, 1024, 4096):
            ec = pm.gemm_rate(32768, 32768, k, "ectc")
            sg = pm.gemm_rate(32768, 32768, k, "sgemm")
            tc = pm.gemm_rate(32768, 32768, k, "tc")
            assert sg <= ec <= tc

    def test_unknown_engine(self, pm):
        with pytest.raises(ConfigurationError):
            pm.gemm_rate(8, 8, 8, "dgemm")

    def test_bad_dims(self, pm):
        with pytest.raises(ConfigurationError):
            pm.gemm_time(0, 8, 8)

    def test_trace_time_additive(self, pm):
        tr = GemmTrace([GemmRecord(64, 64, 64), GemmRecord(128, 128, 128)])
        assert pm.trace_time(tr) == pytest.approx(
            pm.record_time(tr[0]) + pm.record_time(tr[1])
        )

    def test_trace_tflops(self, pm):
        tr = GemmTrace([GemmRecord(4096, 4096, 4096)])
        assert 0 < pm.trace_tflops(tr, "tc") < 400


class TestPanelPricing:
    def test_tsqr_fastest(self, pm):
        for n in (4096, 16384, 32768):
            t = pm.sbr_panel_total(n, 128, "tsqr")
            c = pm.sbr_panel_total(n, 128, "cusolver")
            m = pm.sbr_panel_total(n, 128, "magma")
            assert t < c < m

    def test_fig8_ratio_band(self, pm):
        # Paper: ~5x vs both baselines.
        for n in (8192, 16384, 32768):
            ratio = pm.sbr_panel_total(n, 128, "cusolver") / pm.sbr_panel_total(n, 128, "tsqr")
            assert 2.5 < ratio < 12

    def test_unknown_panel(self, pm):
        with pytest.raises(ConfigurationError):
            pm.panel_time(1024, 128, "lapack")

    def test_panel_time_positive_and_monotone_in_m(self, pm):
        for kind in ("tsqr", "cusolver", "magma"):
            assert 0 < pm.panel_time(2048, 128, kind) < pm.panel_time(32768, 128, kind)


class TestComposedModels:
    def test_fig5_optimum_at_1024(self, pm):
        times = {
            nb: pm.trace_time(trace_sbr_wy(32768, 128, nb, want_q=False), "tc")
            for nb in (128, 256, 512, 1024, 2048, 4096)
        }
        assert min(times, key=times.get) == 1024

    def test_fig6_crossover(self, pm):
        def ratio(n):
            wy = pm.trace_time(trace_sbr_wy(n, 128, 1024, want_q=False), "tc")
            zy = pm.trace_time(trace_sbr_zy(n, 128, want_q=False), "tc")
            return zy / wy

        assert ratio(4096) < 1.0   # ZY wins small
        assert ratio(32768) > 1.05  # WY wins large

    def test_fig7_zy_always_wins_on_sgemm(self, pm):
        for n in (4096, 16384, 32768):
            wy = pm.trace_time(trace_sbr_wy(n, 128, 1024, want_q=False), "sgemm")
            zy = pm.trace_time(trace_sbr_zy(n, 128, want_q=False), "sgemm")
            assert zy < wy

    def test_fig9_orderings(self, pm):
        n = 32768
        ours = pm.sbr_time(n, 128, 1024, method="wy", engine="tc", panel="tsqr").total
        no_tc = pm.sbr_time(n, 128, 1024, method="wy", engine="sgemm", panel="tsqr").total
        no_tsqr = pm.sbr_time(n, 128, 1024, method="wy", engine="tc", panel="cusolver").total
        magma = pm.magma_sy2sb_time(n, 128).total
        assert ours < no_tsqr < magma  # both ingredients matter
        assert no_tc > magma           # paper: TC off is worse than MAGMA at scale

    def test_fig10_headline_speedups(self, pm):
        n = 32768
        wy = pm.sbr_time(n, 128, 1024, method="wy", engine="tc", panel="tsqr").total
        ec = pm.sbr_time(n, 128, 1024, method="wy", engine="ectc", panel="tsqr").total
        magma = pm.magma_sy2sb_time(n, 128).total
        assert 2.0 < magma / wy < 5.5   # paper: up to 3.7x
        assert 1.0 < magma / ec < 2.5   # paper: ~1.3-1.8x

    def test_fig11_evd_speedup(self, pm):
        for n in (8192, 32768):
            ours = pm.evd_time(n, 128, 1024, variant="ours").total
            magma = pm.evd_time(n, 128, variant="magma").total
            assert 1.3 < magma / ours < 3.0  # paper: ~2x, up to 2.3x

    def test_sbr_time_requires_nb_for_wy(self, pm):
        with pytest.raises(ConfigurationError):
            pm.sbr_time(4096, 128, method="wy")

    def test_sbr_time_bad_method(self, pm):
        with pytest.raises(ConfigurationError):
            pm.sbr_time(4096, 128, 1024, method="lu")

    def test_evd_bad_variant(self, pm):
        with pytest.raises(ConfigurationError):
            pm.evd_time(4096, 128, variant="cusolver")

    def test_evd_breakdown_sums(self, pm):
        bd = pm.evd_time(8192, 128, 1024, variant="ours")
        assert bd.total == pytest.approx(bd.sbr + bd.transfer + bd.bulge + bd.solver)

    def test_transfer_time(self, pm):
        assert pm.transfer_time(12e9) == pytest.approx(1.0)

    def test_dc_vectors_cost_more(self, pm):
        assert pm.dc_time(8192, want_vectors=True) > pm.dc_time(8192, want_vectors=False)

    def test_sbr_breakdown_by_tag(self, pm):
        bd = pm.sbr_time(8192, 128, 1024, method="wy", engine="tc", panel="tsqr")
        assert bd.gemm == pytest.approx(sum(bd.gemm_by_tag.values()))
        assert "wy_oaw" in bd.gemm_by_tag
