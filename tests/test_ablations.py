"""Tests for the ablation experiments (design-choice studies)."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_panel_ablation,
    run_precision_ablation,
    run_q_method_ablation,
    run_syr2k_ablation,
)


class TestSyr2kAblation:
    def test_native_syr2k_beats_two_gemms(self):
        res = run_syr2k_ablation(sizes=(8192, 32768))
        for row in res.rows:
            assert row["zy_native_syr2k_s"] < row["zy_two_gemms_s"]

    def test_future_work_flips_conclusion(self):
        # The quantified insight: with a native TC syr2k the ZY algorithm
        # would beat Algorithm 1 — the WY advantage rests on the missing
        # hardware primitive.
        res = run_syr2k_ablation(sizes=(32768,))
        row = res.rows[0]
        assert row["wy_still_wins"] is False
        assert row["zy_native_syr2k_s"] < row["wy_s"]


class TestQMethodAblation:
    def test_runs_and_reports_both_methods(self):
        res = run_q_method_ablation(n=8192, nb=512)
        methods = {r["method"] for r in res.rows}
        assert methods == {"tree", "forward"}
        for row in res.rows:
            assert row["time_s"] > 0 and row["gemm_calls"] > 0

    def test_tree_does_more_flops(self):
        res = run_q_method_ablation(n=8192, nb=512)
        by = {r["method"]: r for r in res.rows}
        assert by["tree"]["total_tflop"] > by["forward"]["total_tflop"]


class TestPanelAblation:
    def test_all_strategies_factor_accurately(self):
        res = run_panel_ablation(m=256, w=16, repeats=1)
        assert len(res.rows) == 3
        for row in res.rows:
            assert row["factorization_error"] < 1e-4  # fp32 panel
            assert row["time_ms"] > 0


class TestPrecisionAblation:
    def test_error_tracks_machine_eps(self):
        res = run_precision_ablation(n=96, b=8, nb=32)
        rows = {r["precision"]: r for r in res.rows}
        # Ladder: fp64 < fp32 ~ ec << fp16/tf32 << bf16.
        assert rows["fp64"]["orthogonality"] < rows["fp32"]["orthogonality"]
        assert rows["fp32"]["orthogonality"] < rows["fp16_tc"]["orthogonality"]
        assert rows["fp16_tc"]["orthogonality"] < rows["bf16_tc"]["orthogonality"]
        assert rows["fp16_ec_tc"]["orthogonality"] < rows["fp16_tc"]["orthogonality"] / 10

    def test_every_row_within_its_eps(self):
        res = run_precision_ablation(n=96, b=8, nb=32)
        for row in res.rows:
            assert row["orthogonality"] < row["machine_eps"] * 2
