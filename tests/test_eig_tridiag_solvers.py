"""Tests for the tridiagonal eigensolvers: QL, secular/D&C, Sturm bisection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConvergenceError, ShapeError
from repro.eig import (
    eigvals_bisect,
    secular_eig,
    solve_secular,
    sturm_count,
    tridiag_eig_dc,
    tridiag_eig_ql,
)
from repro.la import tridiag_to_dense


def _random_tridiag(n, rng):
    return rng.standard_normal(n), rng.standard_normal(max(n - 1, 0))


def _check_solution(d, e, lam, v, *, atol=1e-12):
    t = tridiag_to_dense(d, e)
    ref = np.linalg.eigvalsh(t)
    np.testing.assert_allclose(lam, ref, atol=atol * 10 * max(1.0, np.abs(ref).max()))
    assert np.all(np.diff(lam) >= -1e-12)
    if v is not None:
        n = d.size
        np.testing.assert_allclose(v.T @ v, np.eye(n), atol=1e-11)
        np.testing.assert_allclose(t @ v, v * lam, atol=1e-10 * max(1.0, np.abs(ref).max()))


class TestQL:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 64, 150])
    def test_random(self, rng, n):
        d, e = _random_tridiag(n, rng)
        lam, v = tridiag_eig_ql(d, e)
        _check_solution(d, e, lam, v)

    def test_values_only(self, rng):
        d, e = _random_tridiag(20, rng)
        lam, v = tridiag_eig_ql(d, e, want_vectors=False)
        assert v is None
        _check_solution(d, e, lam, None)

    def test_diagonal_input(self):
        lam, v = tridiag_eig_ql([3.0, 1.0, 2.0], [0.0, 0.0])
        np.testing.assert_array_equal(lam, [1, 2, 3])
        np.testing.assert_allclose(np.abs(v), np.eye(3)[:, [1, 2, 0]], atol=1e-15)

    def test_z0_premultiplication(self, rng):
        d, e = _random_tridiag(12, rng)
        z0 = rng.standard_normal((5, 12))
        lam, v0 = tridiag_eig_ql(d, e, z0=z0)
        _, v = tridiag_eig_ql(d, e)
        np.testing.assert_allclose(v0, z0 @ v, atol=1e-10)

    def test_z0_shape_check(self, rng):
        d, e = _random_tridiag(6, rng)
        with pytest.raises(ShapeError):
            tridiag_eig_ql(d, e, z0=np.eye(5))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            tridiag_eig_ql([1.0, 2.0], [1.0, 2.0])

    def test_constant_diagonal(self, rng):
        # Known spectrum: d + 2 e cos(k pi / (n+1)).
        n = 50
        lam, _ = tridiag_eig_ql(np.full(n, 2.0), np.full(n - 1, -1.0), want_vectors=False)
        k = np.arange(1, n + 1)
        expected = 2.0 - 2.0 * np.cos(k * np.pi / (n + 1))
        np.testing.assert_allclose(np.sort(lam), np.sort(expected), atol=1e-12)


class TestSecular:
    def _problem(self, n, rng, *, min_gap=1e-8):
        d = np.sort(rng.standard_normal(n))
        while n > 1 and np.min(np.diff(d)) < min_gap:
            d = np.sort(rng.standard_normal(n))
        z = rng.standard_normal(n)
        z[np.abs(z) < 1e-3] = 1e-3
        return d, z

    @pytest.mark.parametrize("n", [1, 2, 5, 40, 150])
    @pytest.mark.parametrize("rho", [0.5, 2.0, -0.75])
    def test_eigendecomposition(self, rng, n, rho):
        d, z = self._problem(n, rng)
        m = np.diag(d) + rho * np.outer(z, z)
        lam, v = secular_eig(d, z, rho)
        np.testing.assert_allclose(lam, np.linalg.eigvalsh(m), atol=1e-11)
        np.testing.assert_allclose(v.T @ v, np.eye(n), atol=1e-12)
        np.testing.assert_allclose(m @ v, v * lam, atol=1e-9)

    def test_interlacing(self, rng):
        d, z = self._problem(20, rng)
        lam, anchor, offset = solve_secular(d, z, 1.5)
        assert np.all(lam[:-1] > d[:-1]) and np.all(lam[:-1] < d[1:])
        assert lam[-1] > d[-1]
        np.testing.assert_allclose(d[anchor] + offset, lam, rtol=0, atol=1e-12)

    def test_tight_gaps(self, rng):
        gaps = 10.0 ** rng.uniform(-12, 0, 39)
        d = np.concatenate([[0.0], np.cumsum(gaps)])
        z = rng.standard_normal(40)
        m = np.diag(d) + np.outer(z, z)
        lam, v = secular_eig(d, z, 1.0)
        np.testing.assert_allclose(lam, np.linalg.eigvalsh(m), atol=1e-11)
        np.testing.assert_allclose(v.T @ v, np.eye(40), atol=1e-11)

    def test_rho_zero(self, rng):
        d, z = self._problem(8, rng)
        lam, v = secular_eig(d, z, 0.0)
        np.testing.assert_array_equal(lam, d)
        np.testing.assert_array_equal(v, np.eye(8))

    def test_values_only(self, rng):
        d, z = self._problem(10, rng)
        lam, v = secular_eig(d, z, 1.0, want_vectors=False)
        assert v is None
        assert lam.shape == (10,)

    def test_solve_secular_requires_positive_rho(self, rng):
        d, z = self._problem(5, rng)
        with pytest.raises(ShapeError):
            solve_secular(d, z, -1.0)

    def test_solve_secular_requires_sorted(self, rng):
        with pytest.raises(ShapeError):
            solve_secular(np.array([1.0, 0.0]), np.ones(2), 1.0)

    def test_large_rho_dominates(self, rng):
        # For huge rho the top eigenvalue tends to rho ||z||^2.
        d, z = self._problem(10, rng)
        rho = 1e6
        lam, _ = secular_eig(d, z, rho, want_vectors=False)
        assert lam[-1] == pytest.approx(rho * (z @ z), rel=1e-3)


class TestDC:
    @pytest.mark.parametrize("n", [1, 2, 5, 31, 32, 33, 100, 257])
    def test_random(self, rng, n):
        d, e = _random_tridiag(n, rng)
        lam, v = tridiag_eig_dc(d, e)
        _check_solution(d, e, lam, v)

    def test_values_only(self, rng):
        d, e = _random_tridiag(64, rng)
        lam, v = tridiag_eig_dc(d, e, want_vectors=False)
        assert v is None
        _check_solution(d, e, lam, None)

    @pytest.mark.parametrize("cutoff", [3, 8, 64])
    def test_cutoff_invariance(self, rng, cutoff):
        d, e = _random_tridiag(60, rng)
        lam, v = tridiag_eig_dc(d, e, cutoff=cutoff)
        _check_solution(d, e, lam, v)

    def test_bad_cutoff(self, rng):
        d, e = _random_tridiag(10, rng)
        with pytest.raises(ShapeError):
            tridiag_eig_dc(d, e, cutoff=2)

    def test_zero_offdiagonal_split(self, rng):
        d, e = _random_tridiag(64, rng)
        e[31] = 0.0  # exactly at the tear point
        lam, v = tridiag_eig_dc(d, e)
        _check_solution(d, e, lam, v)

    def test_clustered_spectrum_deflation(self, rng):
        n = 120
        d = np.ones(n) + 1e-13 * rng.standard_normal(n)
        e = 1e-11 * rng.standard_normal(n - 1)
        lam, v = tridiag_eig_dc(d, e)
        _check_solution(d, e, lam, v)

    def test_wilkinson_glued(self, rng):
        n = 126
        d = np.tile(np.abs(np.arange(-10, 11)), 6).astype(float)
        e = np.ones(n - 1)
        lam, v = tridiag_eig_dc(d, e)
        _check_solution(d, e, lam, v)

    def test_negative_offdiagonals(self, rng):
        d = rng.standard_normal(40)
        e = -np.abs(rng.standard_normal(39))
        lam, v = tridiag_eig_dc(d, e)
        _check_solution(d, e, lam, v)

    def test_matches_ql(self, rng):
        d, e = _random_tridiag(80, rng)
        lam_dc, _ = tridiag_eig_dc(d, e, want_vectors=False)
        lam_ql, _ = tridiag_eig_ql(d, e, want_vectors=False)
        np.testing.assert_allclose(lam_dc, lam_ql, atol=1e-11)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            tridiag_eig_dc([1.0], [1.0])


class TestSturm:
    def test_count_monotone(self, rng):
        d, e = _random_tridiag(30, rng)
        xs = np.linspace(-6, 6, 50)
        counts = sturm_count(d, e, xs)
        assert np.all(np.diff(counts) >= 0)
        assert counts[0] == 0 and counts[-1] == 30

    def test_count_matches_reference(self, rng):
        d, e = _random_tridiag(25, rng)
        ref = np.linalg.eigvalsh(tridiag_to_dense(d, e))
        for x in (-1.0, 0.0, 0.5, 2.0):
            assert int(sturm_count(d, e, x)) == int(np.sum(ref < x))

    def test_count_scalar_shape(self, rng):
        d, e = _random_tridiag(10, rng)
        assert np.ndim(sturm_count(d, e, 0.0)) == 0

    def test_bisect_all(self, rng):
        d, e = _random_tridiag(40, rng)
        lam = eigvals_bisect(d, e)
        ref = np.linalg.eigvalsh(tridiag_to_dense(d, e))
        np.testing.assert_allclose(lam, ref, atol=1e-10)

    def test_bisect_select_range(self, rng):
        d, e = _random_tridiag(30, rng)
        ref = np.linalg.eigvalsh(tridiag_to_dense(d, e))
        lam = eigvals_bisect(d, e, select=(5, 12))
        np.testing.assert_allclose(lam, ref[5:12], atol=1e-10)

    def test_bisect_interval(self, rng):
        d, e = _random_tridiag(30, rng)
        ref = np.linalg.eigvalsh(tridiag_to_dense(d, e))
        lam = eigvals_bisect(d, e, interval=(-0.5, 1.5))
        expected = ref[(ref > -0.5) & (ref <= 1.5)]
        np.testing.assert_allclose(lam, expected, atol=1e-9)

    def test_bisect_empty_selection(self, rng):
        d, e = _random_tridiag(10, rng)
        assert eigvals_bisect(d, e, select=(3, 3)).size == 0

    def test_bisect_select_and_interval_conflict(self, rng):
        d, e = _random_tridiag(10, rng)
        with pytest.raises(ShapeError):
            eigvals_bisect(d, e, select=(0, 2), interval=(0.0, 1.0))

    def test_bisect_out_of_range_select(self, rng):
        d, e = _random_tridiag(10, rng)
        with pytest.raises(ShapeError):
            eigvals_bisect(d, e, select=(0, 11))

    def test_bisect_matches_dc(self, rng):
        d, e = _random_tridiag(50, rng)
        lam_b = eigvals_bisect(d, e)
        lam_dc, _ = tridiag_eig_dc(d, e, want_vectors=False)
        np.testing.assert_allclose(lam_b, lam_dc, atol=1e-9)

    def test_single_element(self):
        np.testing.assert_allclose(eigvals_bisect([4.0], []), [4.0], atol=1e-12)
