"""Tests for the band-reduction drivers (ZY, WY) and panel strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotSymmetricError, ShapeError
from repro.gemm import Fp64Engine, SgemmEngine, TensorCoreEngine, EcTensorCoreEngine
from repro.la import bandwidth_of, wy_matrix
from repro.metrics import backward_error, orthogonality_error
from repro.precision import FP16_EPS
from repro.sbr import (
    BlockedQrPanel,
    TsqrPanel,
    UnblockedQrPanel,
    make_panel_strategy,
    sbr_wy,
    sbr_zy,
)
from tests.conftest import random_symmetric


class TestPanelStrategies:
    @pytest.mark.parametrize("strategy", [TsqrPanel(), BlockedQrPanel(), UnblockedQrPanel()])
    @pytest.mark.parametrize("m,w", [(40, 8), (16, 16), (25, 4)])
    def test_factorization_identity(self, rng, strategy, m, w):
        panel = rng.standard_normal((m, w))
        pf = strategy.factor(panel, engine=Fp64Engine())
        q_full = wy_matrix(pf.w, pf.y)
        np.testing.assert_allclose(q_full[:, :w] @ pf.r, panel, atol=1e-10)
        np.testing.assert_allclose(q_full.T @ q_full, np.eye(m), atol=1e-10)

    @pytest.mark.parametrize("strategy", [TsqrPanel(), BlockedQrPanel(), UnblockedQrPanel()])
    def test_r_upper_triangular(self, rng, strategy):
        pf = strategy.factor(rng.standard_normal((30, 6)), engine=Fp64Engine())
        np.testing.assert_allclose(np.tril(pf.r, -1), 0, atol=1e-12)

    def test_rejects_wide_panel(self, rng):
        with pytest.raises(ShapeError):
            TsqrPanel().factor(rng.standard_normal((4, 8)))

    def test_make_panel_strategy(self):
        assert isinstance(make_panel_strategy("tsqr"), TsqrPanel)
        assert isinstance(make_panel_strategy("blocked_qr"), BlockedQrPanel)
        assert isinstance(make_panel_strategy("unblocked_qr"), UnblockedQrPanel)
        strat = TsqrPanel()
        assert make_panel_strategy(strat) is strat

    def test_make_panel_strategy_unknown(self):
        with pytest.raises(ShapeError):
            make_panel_strategy("cholesky")

    def test_blocked_panel_bad_block(self):
        with pytest.raises(ShapeError):
            BlockedQrPanel(block=0)


def _check_sbr(a, res, *, tol_back, tol_orth, tol_eig):
    n = a.shape[0]
    assert bandwidth_of(res.band, tol=tol_back * n * 10) <= res.bandwidth
    assert backward_error(a, res.q, res.band) < tol_back
    assert orthogonality_error(res.q) < tol_orth
    ev_ref = np.linalg.eigvalsh(a)
    ev = np.linalg.eigvalsh(np.asarray(res.band, dtype=np.float64))
    assert np.abs(ev - ev_ref).max() / max(np.abs(ev_ref).max(), 1.0) < tol_eig


class TestSbrZy:
    @pytest.mark.parametrize("n,b", [(32, 4), (64, 8), (65, 8), (96, 32), (50, 7), (20, 16)])
    def test_fp64_correct(self, rng, n, b):
        a = random_symmetric(n, rng)
        res = sbr_zy(a, b, engine=Fp64Engine(), want_q=True)
        _check_sbr(a, res, tol_back=1e-14, tol_orth=1e-13, tol_eig=1e-12)

    def test_band_is_exactly_banded(self, rng):
        a = random_symmetric(64, rng)
        res = sbr_zy(a, 8, engine=Fp64Engine(), want_q=False)
        assert bandwidth_of(res.band, tol=1e-12) <= 8

    def test_no_q_when_not_wanted(self, rng):
        res = sbr_zy(random_symmetric(32, rng), 8, want_q=False)
        assert res.q is None

    def test_blocks_recorded(self, rng):
        res = sbr_zy(random_symmetric(64, rng), 8, engine=Fp64Engine())
        assert len(res.blocks) == (64 - 8 - 2) // 8 + 1
        assert res.blocks[0].offset == 8

    def test_small_matrix_already_banded(self, rng):
        a = random_symmetric(8, rng)
        res = sbr_zy(a, 8, engine=Fp64Engine())
        np.testing.assert_allclose(res.band, a, atol=1e-12)
        np.testing.assert_allclose(res.q, np.eye(8), atol=1e-12)

    def test_rejects_asymmetric(self, rng):
        with pytest.raises(NotSymmetricError):
            sbr_zy(rng.standard_normal((16, 16)), 4)

    def test_rejects_bad_bandwidth(self, rng):
        with pytest.raises(ConfigurationError):
            sbr_zy(random_symmetric(8, rng), 16)

    def test_fp32_error_level(self, rng):
        a = random_symmetric(96, rng)
        res = sbr_zy(a, 8, engine=SgemmEngine(), want_q=True)
        _check_sbr(a, res, tol_back=1e-6, tol_orth=1e-5, tol_eig=1e-4)


class TestSbrWy:
    @pytest.mark.parametrize(
        "n,b,nb",
        [(64, 8, 32), (96, 8, 32), (100, 8, 24), (128, 16, 64), (96, 16, 96), (48, 8, 8), (65, 4, 16)],
    )
    def test_fp64_correct(self, rng, n, b, nb):
        a = random_symmetric(n, rng)
        res = sbr_wy(a, b, nb, engine=Fp64Engine(), want_q=True)
        _check_sbr(a, res, tol_back=1e-13, tol_orth=1e-12, tol_eig=1e-11)

    @pytest.mark.parametrize("panel", ["tsqr", "blocked_qr", "unblocked_qr"])
    def test_panel_strategies_agree(self, rng, panel):
        a = random_symmetric(80, rng)
        res = sbr_wy(a, 8, 32, engine=Fp64Engine(), panel=panel, want_q=True)
        _check_sbr(a, res, tol_back=1e-13, tol_orth=1e-12, tol_eig=1e-11)

    def test_matches_zy_band_eigenvalues(self, rng):
        # Both algorithms produce bands orthogonally similar to A, hence
        # identical eigenvalues (up to fp64 rounding).
        a = random_symmetric(72, rng)
        band_wy = sbr_wy(a, 8, 24, engine=Fp64Engine(), want_q=False).band
        band_zy = sbr_zy(a, 8, engine=Fp64Engine(), want_q=False).band
        np.testing.assert_allclose(
            np.linalg.eigvalsh(band_wy), np.linalg.eigvalsh(band_zy), atol=1e-10
        )

    @pytest.mark.parametrize("q_method", ["tree", "forward"])
    def test_q_methods_equivalent(self, rng, q_method):
        a = random_symmetric(64, rng)
        res = sbr_wy(a, 8, 32, engine=Fp64Engine(), want_q=True, q_method=q_method)
        _check_sbr(a, res, tol_back=1e-13, tol_orth=1e-12, tol_eig=1e-11)

    def test_one_block_per_nb(self, rng):
        res = sbr_wy(random_symmetric(128, rng), 8, 32, engine=Fp64Engine())
        # Big blocks at j0 = 0, 32, 64, 96 -> trailing small; offsets +b.
        offsets = [blk.offset for blk in res.blocks]
        assert offsets == [8, 40, 72, 104]

    def test_nb_must_divide(self, rng):
        with pytest.raises(ConfigurationError):
            sbr_wy(random_symmetric(64, rng), 8, 20)

    def test_fp16_tc_error_at_machine_eps(self, rng):
        a = random_symmetric(96, rng)
        res = sbr_wy(a, 8, 32, engine=TensorCoreEngine(), want_q=True)
        eb = backward_error(a, res.q, res.band)
        eo = orthogonality_error(res.q)
        # Paper Table 3: both bounded by the TC machine epsilon (~5e-4).
        assert eb < FP16_EPS
        assert eo < FP16_EPS

    def test_ec_tc_recovers_fp32(self, rng):
        a = random_symmetric(96, rng)
        eb_tc = backward_error(a, *_qb(sbr_wy(a, 8, 32, engine=TensorCoreEngine(), want_q=True)))
        eb_ec = backward_error(a, *_qb(sbr_wy(a, 8, 32, engine=EcTensorCoreEngine(), want_q=True)))
        assert eb_ec < eb_tc / 50

    def test_band_dtype_follows_engine(self, rng):
        a = random_symmetric(32, rng)
        assert sbr_wy(a, 4, 8, engine=SgemmEngine()).band.dtype == np.float32
        assert sbr_wy(a, 4, 8, engine=Fp64Engine()).band.dtype == np.float64

    def test_input_not_mutated(self, rng):
        a = random_symmetric(48, rng)
        a_copy = a.copy()
        sbr_wy(a, 8, 16, engine=Fp64Engine())
        np.testing.assert_array_equal(a, a_copy)


def _qb(res):
    return res.q, res.band


class TestSbrResultContainer:
    def test_n_property(self, rng):
        res = sbr_zy(random_symmetric(24, rng), 4, engine=Fp64Engine())
        assert res.n == 24

    def test_wyblock_properties(self, rng):
        res = sbr_wy(random_symmetric(48, rng), 8, 16, engine=Fp64Engine())
        blk = res.blocks[0]
        assert blk.nrows == 48 - 8
        assert blk.ncols >= 8
