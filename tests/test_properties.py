"""Property-based tests (hypothesis) on core kernels and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.eig import sturm_count, tridiag_eig_dc
from repro.gemm import Fp64Engine
from repro.gemm.symbolic import is_algorithm_tag, trace_sbr_wy, trace_sbr_zy
from repro.la import (
    build_wy,
    householder_qr,
    lu_nopivot,
    make_reflector,
    reconstruct_wy,
    reflector_matrix,
    tridiag_to_dense,
    tsqr,
    wy_matrix,
)
from repro.precision import ec_tcgemm, round_fp16, split_fp16
from repro.sbr import sbr_wy, sbr_zy

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=64
)


def _vec(n_min=1, n_max=24):
    return st.integers(n_min, n_max).flatmap(
        lambda n: arrays(np.float64, (n,), elements=finite_floats)
    )


class TestReflectorProperties:
    @given(x=_vec(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_reflector_annihilates_and_preserves_norm(self, x):
        v, beta, alpha = make_reflector(x)
        h = reflector_matrix(v, beta)
        hx = h @ x
        assert np.allclose(hx[1:], 0, atol=1e-9 * max(1.0, np.linalg.norm(x)))
        assert np.isclose(np.linalg.norm(hx), np.linalg.norm(x), rtol=1e-9, atol=1e-12)
        assert np.isclose(abs(alpha), np.linalg.norm(x), rtol=1e-9, atol=1e-12)

    @given(x=_vec(2, 32))
    @settings(max_examples=60, deadline=None)
    def test_reflector_involution(self, x):
        v, beta, _ = make_reflector(x)
        h = reflector_matrix(v, beta)
        assert np.allclose(h @ h, np.eye(x.size), atol=1e-10)


class TestQrProperties:
    @given(
        m=st.integers(2, 40),
        n=st.integers(1, 12),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_qr_identity_and_orthogonality(self, m, n, seed):
        if m < n:
            m, n = n, m
        if m == 0 or n == 0:
            return
        a = np.random.default_rng(seed).standard_normal((m, n))
        v, b, r = householder_qr(a)
        w, y = build_wy(v, b)
        q = wy_matrix(w, y)
        assert np.allclose(q[:, :n] @ r, a, atol=1e-9)
        assert np.allclose(q.T @ q, np.eye(m), atol=1e-10)

    @given(
        m=st.integers(4, 120),
        n=st.integers(1, 8),
        leaf_mult=st.integers(1, 4),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_tsqr_reconstruct_roundtrip(self, m, n, leaf_mult, seed):
        if m < n:
            return
        a = np.random.default_rng(seed).standard_normal((m, n))
        leaf = max(leaf_mult * n, 8)
        q, r = tsqr(a, leaf_rows=leaf, engine=Fp64Engine())
        w, y, s = reconstruct_wy(q, engine=Fp64Engine())
        q_full = wy_matrix(w, y)
        assert np.allclose(q_full[:, :n] @ (s[:, None] * r), a, atol=1e-8)
        assert np.allclose(q_full.T @ q_full, np.eye(m), atol=1e-9)


class TestLuProperties:
    @given(n=st.integers(1, 16), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_lu_roundtrip_diag_dominant(self, n, seed):
        g = np.random.default_rng(seed).standard_normal((n, n))
        a = g + n * np.eye(n)  # diagonally dominant: no pivoting needed
        l, u = lu_nopivot(a)
        assert np.allclose(l @ u, a, atol=1e-9 * n)


class TestPrecisionProperties:
    @given(x=_vec(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_split_reconstructs(self, x):
        x32 = x.astype(np.float32)
        hi, lo = split_fp16(x32)
        recon = hi.astype(np.float64) + lo.astype(np.float64) / 2.0**11
        scale = np.maximum(np.abs(x32), 2.0**-14)
        assert np.all(np.abs(recon - x32) / scale < 2.0**-18)

    @given(x=_vec(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_fp16_rounding_idempotent_and_monotone(self, x):
        x32 = x.astype(np.float32)
        r = round_fp16(x32)
        assert np.array_equal(r, round_fp16(r))
        order = np.argsort(x32, kind="stable")
        assert np.all(np.diff(r[order]) >= 0)

    @given(
        m=st.integers(1, 12), k=st.integers(1, 12), n=st.integers(1, 12),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_ec_tcgemm_fp32_grade(self, m, k, n, seed):
        g = np.random.default_rng(seed)
        a = g.standard_normal((m, k)).astype(np.float32)
        b = g.standard_normal((k, n)).astype(np.float32)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        # Normalize by the no-cancellation magnitude sum |A||B| — the
        # backward-error scale; the result itself may cancel to ~0.
        scale = max(float((np.abs(a) @ np.abs(b)).max()), 1e-6)
        assert float(np.abs(ec_tcgemm(a, b) - exact).max()) / scale < 1e-5


class TestSturmProperties:
    @given(
        n=st.integers(1, 30),
        seed=st.integers(0, 2**31),
        x=st.floats(-10, 10, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_count_equals_spectrum_count(self, n, seed, x):
        g = np.random.default_rng(seed)
        d = g.standard_normal(n)
        e = g.standard_normal(max(n - 1, 0))
        ref = np.linalg.eigvalsh(tridiag_to_dense(d, e))
        # Stay off exact eigenvalues (measure-zero, but be safe).
        if np.min(np.abs(ref - x), initial=np.inf) < 1e-9:
            return
        assert int(sturm_count(d, e, x)) == int(np.sum(ref < x))


class TestDcProperties:
    @given(n=st.integers(1, 60), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_dc_matches_numpy(self, n, seed):
        g = np.random.default_rng(seed)
        d = g.standard_normal(n)
        e = g.standard_normal(max(n - 1, 0))
        lam, v = tridiag_eig_dc(d, e, cutoff=8)
        t = tridiag_to_dense(d, e)
        assert np.allclose(lam, np.linalg.eigvalsh(t), atol=1e-10)
        assert np.allclose(v.T @ v, np.eye(n), atol=1e-10)


class TestSbrProperties:
    @given(
        n=st.integers(6, 48),
        b=st.integers(1, 8),
        nb_mult=st.integers(1, 4),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_wy_band_preserves_spectrum(self, n, b, nb_mult, seed):
        if b >= n or b * nb_mult > n:
            return
        g = np.random.default_rng(seed)
        a = g.standard_normal((n, n))
        a = (a + a.T) / 2
        res = sbr_wy(a, b, b * nb_mult, engine=Fp64Engine(), want_q=False)
        assert np.allclose(
            np.linalg.eigvalsh(res.band), np.linalg.eigvalsh(a), atol=1e-9
        )

    @given(
        n=st.integers(6, 48),
        b=st.integers(1, 8),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_zy_backward_stable(self, n, b, seed):
        if b >= n:
            return
        g = np.random.default_rng(seed)
        a = g.standard_normal((n, n))
        a = (a + a.T) / 2
        res = sbr_zy(a, b, engine=Fp64Engine(), want_q=True)
        resid = a - res.q @ res.band @ res.q.T
        assert float(np.abs(resid).max()) < 1e-10 * max(1.0, float(np.abs(a).max()))

    @given(
        n=st.integers(6, 64),
        b=st.integers(1, 8),
        nb_mult=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_symbolic_traces_flop_relation(self, n, b, nb_mult):
        nb = b * nb_mult
        if b >= n or nb > n:
            return
        wy = trace_sbr_wy(n, b, nb, want_q=False)
        zy = trace_sbr_zy(n, b, want_q=False)
        # Every record carries an algorithm-level tag.
        assert all(is_algorithm_tag(r.tag) for r in wy)
        assert all(is_algorithm_tag(r.tag) for r in zy)
        # Table 2 direction — WY does more work — holds once the deferred
        # window is real (nb > b) and the matrix spans several windows;
        # tiny degenerate cases can tip the other way by small constants.
        if nb >= 2 * b and n >= 4 * nb:
            assert wy.total_flops >= zy.total_flops
