"""Property-based tests for the extension packages (svd, refine, qdwh,
recursive QR, syr2k)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.eig.qdwh import qdwh_polar
from repro.gemm import Fp64Engine
from repro.la import recursive_qr, wy_matrix
from repro.refine import refine_eigenpairs
from repro.svd import randomized_svd, svd_via_evd


class TestRecursiveQrProperties:
    @given(
        m=st.integers(2, 48),
        n=st.integers(1, 24),
        leaf=st.integers(1, 16),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_factorization_identity(self, m, n, leaf, seed):
        if m < n:
            m, n = n, m
        a = np.random.default_rng(seed).standard_normal((m, n))
        w, y, r = recursive_qr(a, leaf_cols=leaf, engine=Fp64Engine())
        q = wy_matrix(w, y)
        assert np.allclose(q[:, :n] @ r, a, atol=1e-9)
        assert np.allclose(q.T @ q, np.eye(m), atol=1e-9)
        assert np.allclose(np.tril(r, -1), 0, atol=1e-11)


class TestQdwhProperties:
    @given(
        n=st.integers(1, 20),
        log_cond=st.floats(0, 8),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_polar_invariants(self, n, log_cond, seed):
        g = np.random.default_rng(seed)
        u0, _ = np.linalg.qr(g.standard_normal((n, n)))
        v0, _ = np.linalg.qr(g.standard_normal((n, n)))
        s = np.geomspace(1.0, 10.0 ** (-log_cond), n)
        a = (u0 * s) @ v0.T
        u, h, its = qdwh_polar(a)
        assert its <= 10
        assert np.allclose(u.T @ u, np.eye(n), atol=1e-10)
        assert np.allclose(u @ h, a, atol=1e-9)
        assert np.linalg.eigvalsh(h).min() > -1e-10


class TestSvdProperties:
    @given(
        m=st.integers(2, 36),
        n=st.integers(2, 24),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_jordan_wielandt_reconstructs(self, m, n, seed):
        a = np.random.default_rng(seed).standard_normal((m, n))
        u, s, vt = svd_via_evd(a, precision="fp64")
        assert np.allclose((u * s) @ vt, a, atol=1e-8)
        assert np.all(s >= -1e-12)
        assert np.all(np.diff(s) <= 1e-10)

    @given(
        m=st.integers(10, 50),
        rank=st.integers(1, 6),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_randomized_svd_exact_on_low_rank(self, m, rank, seed):
        g = np.random.default_rng(seed)
        n = max(rank + 2, m // 2)
        a = g.standard_normal((m, rank)) @ g.standard_normal((rank, n))
        u, s, vt = randomized_svd(a, rank, rng=g)
        denom = max(np.linalg.norm(a), 1e-12)
        assert np.linalg.norm(a - (u * s) @ vt) / denom < 1e-8


class TestRefineProperties:
    @given(
        n=st.integers(4, 40),
        noise_exp=st.floats(-6, -2),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_refinement_contracts_residual(self, n, noise_exp, seed):
        g = np.random.default_rng(seed)
        a = g.standard_normal((n, n))
        a = (a + a.T) / 2
        lam_ref, v_ref = np.linalg.eigh(a)
        # Perturb the exact eigenvectors and refine back.
        x0 = v_ref + 10.0**noise_exp * g.standard_normal((n, n))
        lam, x = refine_eigenpairs(a, x0, iterations=2)
        resid0 = float(np.abs(a @ x0 - x0 * lam_ref).max())
        resid = float(np.abs(a @ x - x * lam).max())
        assert resid < max(resid0 / 10, 1e-10 * max(1.0, np.abs(a).max()))


class TestSyr2kProperties:
    @given(
        m=st.integers(1, 20),
        k=st.integers(1, 10),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_syr2k_symmetric_and_correct(self, m, k, seed):
        g = np.random.default_rng(seed)
        y = g.standard_normal((m, k))
        z = g.standard_normal((m, k))
        out = Fp64Engine().syr2k(y, z)
        assert np.array_equal(out, out.T)
        assert np.allclose(out, y @ z.T + z @ y.T, atol=1e-10)


class TestBidiagProperties:
    @given(
        m=st.integers(1, 30),
        n=st.integers(1, 20),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_svd_direct_reconstructs(self, m, n, seed):
        from repro.svd import svd_direct

        a = np.random.default_rng(seed).standard_normal((m, n))
        u, s, vt = svd_direct(a)
        k = min(m, n)
        scale = max(float(np.abs(a).max()), 1.0)
        assert np.allclose((u * s) @ vt, a, atol=1e-9 * scale)
        assert np.allclose(u.T @ u, np.eye(k), atol=1e-9)
        assert np.allclose(vt @ vt.T, np.eye(k), atol=1e-9)
        assert np.all(s >= -1e-12) and np.all(np.diff(s) <= 1e-9 * scale)

    @given(
        m=st.integers(2, 30),
        rank=st.integers(1, 5),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_svd_direct_rank_detection(self, m, rank, seed):
        from repro.svd import svd_direct

        g = np.random.default_rng(seed)
        n = min(m, rank + 3)
        rank = min(rank, n)
        a = g.standard_normal((m, rank)) @ g.standard_normal((rank, n))
        _, s, _ = svd_direct(a)
        smax = float(s.max(initial=0.0))
        if smax > 1e-8:
            assert int(np.sum(s > 1e-9 * smax * max(m, n))) <= rank + 0


class TestLobpcgProperties:
    @given(
        n=st.integers(12, 60),
        k=st.integers(1, 4),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_largest_pairs_residual(self, n, k, seed):
        from repro.eig import lobpcg
        from repro.errors import ConvergenceError

        g = np.random.default_rng(seed)
        a = g.standard_normal((n, n))
        a = (a + a.T) / 2
        try:
            lam, x, _ = lobpcg(a, k, largest=True, rng=g, tol=1e-6, max_iter=500)
        except ConvergenceError:
            return  # pathologically clustered top — acceptable to bail
        scale = max(float(np.abs(a).max()), 1.0)
        assert np.abs(a @ x - x * lam).max() < 1e-3 * scale
        assert np.allclose(x.T @ x, np.eye(k), atol=1e-8)
