"""Tests for the observability analytics layer: attribution, exporters,
bench store, regression gate, and the satellite telemetry additions."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import obs, syevd_2stage
from repro.device.perf_model import PerfModel
from repro.device.specs import A100Spec
from repro.gemm import SgemmEngine
from repro.obs.__main__ import main as obs_main
from repro.obs.analytics import (
    SUITES,
    BenchScenario,
    attribute_manifest,
    compare_sessions,
    has_regressions,
    load_session,
    render_attribution,
    render_regression,
    run_suite,
    to_chrome_trace,
    to_collapsed_stacks,
    write_session,
)
from repro.obs.analytics.attribution import UNATTRIBUTED
from repro.obs.manifest import MIN_SCHEMA_VERSION, SCHEMA_VERSION


class FakeClock:
    """Deterministic clock: advances by a fixed step on every read."""

    def __init__(self, step: float = 0.001):
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def _syevd_manifest(tmp_path, *, n=64, b=4, nb=16, name="syevd.jsonl"):
    """One instrumented small syevd_2stage run persisted with full meta."""
    rng = np.random.default_rng(3)
    a = rng.standard_normal((n, n))
    a = (a + a.T) * 0.5
    with obs.collect() as session:
        syevd_2stage(a, b=b, nb=nb, want_vectors=False, tridiag_solver="dc")
    return obs.write_manifest(
        session,
        str(tmp_path / name),
        label="syevd-small",
        precision="fp32",
        matrix={"n": n},
        config={"b": b, "nb": nb, "method": "wy", "want_vectors": False},
    )


class TestDeterministicClock:
    def test_collector_durations_are_deterministic(self):
        clk = FakeClock(step=0.5)
        with obs.collect(clock=clk) as session:
            with obs.span("a"):
                pass
        # Clock reads: epoch, span enter, span exit -> duration is one step.
        assert session.spans[0].duration == pytest.approx(0.5)
        assert session.spans[0].start == pytest.approx(0.5)

    def test_now_reads_the_active_clock(self):
        clk = FakeClock(step=1.0)
        with obs.collect(clock=clk):
            first = obs.now()
            second = obs.now()
        assert second - first == pytest.approx(1.0)

    def test_engine_events_share_the_fake_timeline(self, rng):
        eng = SgemmEngine()
        a = rng.standard_normal((4, 4)).astype(np.float32)
        clk = FakeClock(step=0.25)
        with obs.collect(clock=clk) as session:
            with obs.span("p"):
                eng.gemm(a, a, tag="t")
        ev = session.gemm_events[0]
        # The engine reads the clock twice (entry/exit): one deterministic step.
        assert ev.seconds == pytest.approx(0.25)
        assert ev.start >= 0.0  # placed on the collector epoch timeline
        sp = session.by_path("p")[0]
        assert sp.start <= ev.start <= sp.start + sp.duration

    def test_run_suite_accepts_fake_clock(self):
        clk = FakeClock(step=0.001)
        scenarios = (BenchScenario("tiny", n=16, b=2, nb=4),)
        session = run_suite("smoke", repeats=2, scenarios=scenarios, clock=clk)
        row = session["scenarios"][0]
        assert len(row["wall"]) == 2
        # Wall times come off the fake clock: strictly positive multiples
        # of the step, identical logic each repeat.
        assert all(w > 0 and abs(w / 0.001 - round(w / 0.001)) < 1e-9
                   for w in row["wall"])


class TestAttribution:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        path = _syevd_manifest(tmp_path_factory.mktemp("attr"))
        return attribute_manifest(path)

    def test_phases_are_the_pipeline_stages(self, report):
        assert [row["phase"] for row in report.phases] == [
            "syevd/sbr", "syevd/bulge", "syevd/tridiag_solve",
        ]

    def test_every_gemm_phase_has_model_prediction(self, report):
        sbr = next(r for r in report.phases if r["phase"] == "syevd/sbr")
        assert sbr["calls"] > 0
        assert sbr["measured"] > 0
        assert sbr["modeled"] > 0
        assert sbr["efficiency"] is not None and sbr["efficiency"] > 0
        assert sbr["span_seconds"] >= sbr["measured"] - 1e-9
        assert sbr["other_seconds"] >= 0.0

    def test_totals_are_the_sum_of_phases(self, report):
        assert report.totals["calls"] == sum(r["calls"] for r in report.phases)
        assert report.totals["measured"] == pytest.approx(
            sum(r["measured"] for r in report.phases)
        )
        # Every modeled second lands in exactly one roofline class.
        assert sum(report.totals["bound"].values()) == pytest.approx(
            report.totals["modeled"]
        )

    def test_tags_sorted_by_measured_time(self, report):
        measured = [row["measured"] for row in report.tags]
        assert measured == sorted(measured, reverse=True)

    def test_gaps_ranked_by_excess(self, report):
        excess = [g["excess"] for g in report.gaps]
        assert excess == sorted(excess, reverse=True)
        assert {g["phase"] for g in report.gaps} <= {
            r["phase"] for r in report.phases
        }

    def test_analytic_flop_join(self, report):
        assert report.analytic is not None
        assert report.analytic["sbr_flops"] > 0
        cov = report.analytic["engine_flop_coverage"]
        assert cov is not None and 0.0 < cov < 2.0

    def test_render_contains_sections(self, report):
        text = render_attribution(report)
        assert "per phase:" in text
        assert "per tag:" in text
        assert "where the time went" in text
        assert "efficiency" in text
        assert "analytic check" in text

    def _manifest_with_events(self, tmp_path, events):
        with obs.collect() as session:
            with obs.span("run"):
                for name, (m, n, k, engine) in events.items():
                    with obs.span(name):
                        obs.gemm_event(m, n, k, tag=name, engine=engine,
                                       op="gemm", seconds=1e-4, start=obs.now())
        return obs.write_manifest(session, str(tmp_path / "synth.jsonl"))

    def test_roofline_launch_vs_compute(self, tmp_path):
        path = self._manifest_with_events(tmp_path, {
            "tiny": (4, 4, 4, "sgemm"),          # everything below launch cost
            "big": (2048, 2048, 2048, "tc"),     # throughput-curve limited
        })
        report = attribute_manifest(path)
        bound = {row["tag"]: row["bound"] for row in report.tags}
        assert max(bound["tiny"], key=bound["tiny"].get) == "launch"
        assert max(bound["big"], key=bound["big"].get) == "compute"

    def test_roofline_bandwidth_bound(self, tmp_path):
        # A spec with starved HBM makes the memory roofline bind.
        slow_hbm = PerfModel(dataclasses.replace(A100Spec, hbm_bandwidth=1e9))
        path = self._manifest_with_events(tmp_path, {
            "big": (2048, 2048, 2048, "tc"),
        })
        report = attribute_manifest(path, model=slow_hbm)
        bound = report.tags[0]["bound"]
        assert max(bound, key=bound.get) == "bandwidth"

    def test_modeled_matches_perf_model_exactly(self, tmp_path):
        path = self._manifest_with_events(tmp_path, {"one": (64, 32, 16, "tc")})
        report = attribute_manifest(path)
        assert report.totals["modeled"] == pytest.approx(
            PerfModel().gemm_time(64, 32, 16, "tc")
        )

    def test_event_outside_any_span_is_unattributed(self, tmp_path):
        with obs.collect() as session:
            with obs.span("run"):
                with obs.span("phase"):
                    obs.gemm_event(8, 8, 8, tag="in", engine="sgemm",
                                   op="gemm", seconds=1e-5)
            # No active span: span_path is "".
            obs.gemm_event(8, 8, 8, tag="out", engine="sgemm",
                           op="gemm", seconds=1e-5)
        path = obs.write_manifest(session, str(tmp_path / "m.jsonl"))
        report = attribute_manifest(path)
        by_phase = {row["phase"]: row for row in report.phases}
        assert UNATTRIBUTED in by_phase
        assert by_phase[UNATTRIBUTED]["calls"] == 1
        assert by_phase["run/phase"]["calls"] == 1

    def test_syr2k_events_price_on_syr2k_model(self, tmp_path):
        with obs.collect() as session:
            with obs.span("run"):
                obs.gemm_event(32, 32, 8, tag="s", engine="sgemm",
                               op="syr2k", seconds=1e-5)
        path = obs.write_manifest(session, str(tmp_path / "m.jsonl"))
        report = attribute_manifest(path)
        assert report.totals["modeled"] == pytest.approx(
            PerfModel().syr2k_time(32, 8, "sgemm")
        )


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = _syevd_manifest(tmp_path_factory.mktemp("chrome"))
        return to_chrome_trace(path)

    def test_schema_shape(self, trace):
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert isinstance(trace["traceEvents"], list)
        assert trace["traceEvents"]
        for ev in trace["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            assert isinstance(ev["name"], str) and ev["name"]
            if ev["ph"] == "X":
                assert ev["ts"] >= 0.0
                assert ev["dur"] >= 0.0
            else:
                assert "name" in ev["args"]

    def test_json_round_trip(self, trace):
        again = json.loads(json.dumps(trace))
        assert again == trace

    def test_span_and_gemm_lanes(self, trace):
        tids = {ev["tid"] for ev in trace["traceEvents"] if ev["ph"] == "X"}
        assert tids == {1, 2}  # phase spans + gemm stream
        thread_names = {
            ev["args"]["name"]
            for ev in trace["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert thread_names == {"phase spans", "gemm stream"}

    def test_span_args_carry_path(self, trace):
        spans = [ev for ev in trace["traceEvents"]
                 if ev["ph"] == "X" and ev.get("cat") == "span"]
        assert any(ev["args"]["path"] == "syevd/sbr" for ev in spans)

    def test_gemm_events_nest_inside_run(self, trace):
        spans = [ev for ev in trace["traceEvents"]
                 if ev["ph"] == "X" and ev.get("cat") == "span"]
        root = next(ev for ev in spans if ev["args"]["depth"] == 0)
        gemms = [ev for ev in trace["traceEvents"] if ev.get("cat") == "gemm"]
        assert gemms
        for ev in gemms:
            assert root["ts"] - 1.0 <= ev["ts"] <= root["ts"] + root["dur"] + 1.0

    def test_v1_manifest_without_starts_exports_spans_only(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": 1, "label": "old"}) + "\n"
            + json.dumps({"kind": "span", "name": "run", "path": "run",
                          "start": 0.0, "duration": 1.0, "depth": 0}) + "\n"
            + json.dumps({"kind": "gemm", "m": 4, "n": 4, "k": 4, "tag": "t",
                          "engine": "sgemm", "op": "gemm", "seconds": 0.1,
                          "span_path": "run"}) + "\n"
        )
        trace = to_chrome_trace(str(path))
        assert not [ev for ev in trace["traceEvents"] if ev.get("cat") == "gemm"]
        assert [ev for ev in trace["traceEvents"] if ev.get("cat") == "span"]


class TestCollapsedStacks:
    def test_format_and_self_time(self, tmp_path):
        clk = FakeClock(step=1.0)
        with obs.collect(clock=clk) as session:
            with obs.span("root"):
                with obs.span("child"):
                    pass
        path = obs.write_manifest(session, str(tmp_path / "m.jsonl"))
        text = to_collapsed_stacks(path)
        lines = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in text.strip().splitlines()
        )
        assert set(lines) == {"root;child", "root"}
        # child: one step; root: enter..exit spans 3 steps, minus child's 1.
        assert lines["root;child"] == 1_000_000
        assert lines["root"] == 2_000_000
        assert text.endswith("\n")

    def test_zero_duration_spans_clamp_to_zero(self, tmp_path):
        # A child longer than its parent's bookkeeping can make self time
        # negative; the exporter clamps at zero rather than emitting
        # negative widths.
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": SCHEMA_VERSION}) + "\n"
            + json.dumps({"kind": "span", "name": "child", "path": "p/child",
                          "start": 0.0, "duration": 2.0, "depth": 1}) + "\n"
            + json.dumps({"kind": "span", "name": "p", "path": "p",
                          "start": 0.0, "duration": 1.0, "depth": 0}) + "\n"
        )
        text = to_collapsed_stacks(str(path))
        values = {l.rsplit(" ", 1)[0]: int(l.rsplit(" ", 1)[1])
                  for l in text.strip().splitlines()}
        assert values["p"] == 0
        assert values["p;child"] == 2_000_000

    def test_empty_manifest_is_empty_string(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps({"kind": "meta", "schema": SCHEMA_VERSION}) + "\n")
        assert to_collapsed_stacks(str(path)) == ""


class TestBenchStore:
    SCENARIOS = (
        BenchScenario("tiny-a", n=24, b=2, nb=4),
        BenchScenario("tiny-b", n=32, b=4, nb=8),
    )

    def test_run_suite_shape(self):
        session = run_suite("smoke", repeats=2, scenarios=self.SCENARIOS)
        assert session["kind"] == "bench_session"
        assert session["suite"] == "smoke"
        assert session["repeats"] == 2
        assert {"platform", "python", "numpy", "cpu_count"} <= set(session["env"])
        keys = [row["key"] for row in session["scenarios"]]
        assert keys == ["tiny-a", "tiny-b"]
        for row in session["scenarios"]:
            assert len(row["wall"]) == 2
            assert all(w > 0 for w in row["wall"])
            assert row["phases"]  # per-phase breakdowns recorded
            assert all(len(v) == 2 for v in row["phases"].values())

    def test_write_and_load_roundtrip(self, tmp_path):
        session = run_suite("smoke", repeats=1, scenarios=self.SCENARIOS[:1])
        path = write_session(session, run_dir=str(tmp_path))
        assert path.endswith("BENCH_smoke.json")
        assert load_session(path) == session

    def test_load_rejects_non_sessions(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text("{}")
        with pytest.raises(ValueError, match="kind"):
            load_session(str(p))
        p.write_text("not json")
        with pytest.raises(ValueError, match="not a bench session"):
            load_session(str(p))
        p.write_text(json.dumps({"kind": "bench_session", "schema": 99,
                                 "scenarios": []}))
        with pytest.raises(ValueError, match="schema"):
            load_session(str(p))

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope", repeats=1)
        with pytest.raises(ValueError, match="repeats"):
            run_suite("smoke", repeats=0, scenarios=self.SCENARIOS[:1])

    def test_pinned_suites_well_formed(self):
        assert set(SUITES) >= {"smoke", "standard"}
        for suite in SUITES.values():
            keys = [sc.key for sc in suite]
            assert len(keys) == len(set(keys))  # join identity is unique
        assert all(sc.n <= 512 for sc in SUITES["smoke"])


class TestRegress:
    def _session(self, walls_by_key, suite="smoke"):
        return {
            "kind": "bench_session", "schema": 1, "suite": suite,
            "created": "2026-01-01T00:00:00", "repeats": len(next(iter(walls_by_key.values()))),
            "env": {"platform": "x", "python": "3"},
            "scenarios": [
                {"key": k, "config": {}, "wall": list(w),
                 "phases": {"syevd/sbr": [x * 0.5 for x in w]}}
                for k, w in walls_by_key.items()
            ],
        }

    def test_identical_sessions_pass(self):
        s = self._session({"a": [1.0, 1.1, 0.9], "b": [2.0, 2.1, 1.9]})
        entries = compare_sessions(s, s)
        assert all(e["verdict"] == "ok" for e in entries)
        assert not has_regressions(entries)

    def test_deterministic_2x_slowdown_gates(self):
        base = self._session({"a": [1.0, 1.0, 1.0]})
        cand = self._session({"a": [2.0, 2.0, 2.0]})
        entries = compare_sessions(base, cand)
        assert entries[0]["verdict"] == "regression"
        assert entries[0]["delta"] == pytest.approx(1.0)
        assert has_regressions(entries)

    def test_noisy_slowdown_downgrades_to_suspect(self):
        # Median is up 50% but the repeats straddle the baseline: the
        # bootstrap CI reaches below tolerance, so the verdict must not gate.
        base = self._session({"a": [1.0, 1.0, 1.0, 1.0]})
        cand = self._session({"a": [0.5, 0.9, 2.1, 2.3]})
        entries = compare_sessions(base, cand, tolerance=0.25)
        assert entries[0]["verdict"] in ("suspect", "ok")
        assert not has_regressions(entries)

    def test_improvement_and_missing(self):
        base = self._session({"a": [2.0, 2.0], "gone": [1.0, 1.0]})
        cand = self._session({"a": [1.0, 1.0], "new": [1.0, 1.0]})
        entries = {e["key"]: e for e in compare_sessions(base, cand)}
        assert entries["a"]["verdict"] == "improved"
        assert entries["gone"]["verdict"] == "missing"
        assert entries["new"]["verdict"] == "missing"

    def test_phase_deltas_attached(self):
        base = self._session({"a": [1.0, 1.0]})
        cand = self._session({"a": [2.0, 2.0]})
        entries = compare_sessions(base, cand)
        assert entries[0]["phases"]["syevd/sbr"]["delta"] == pytest.approx(1.0)

    def test_render_mentions_env_mismatch(self):
        base = self._session({"a": [1.0, 1.0]})
        cand = self._session({"a": [1.0, 1.0]})
        cand["env"] = {"platform": "y", "python": "3"}
        text = render_regression(base, cand)
        assert "environment differs" in text

    def test_render_regression_report(self):
        base = self._session({"a": [1.0, 1.0]})
        cand = self._session({"a": [3.0, 3.0]})
        text = render_regression(base, cand)
        assert "REGRESSION" in text
        assert "slowest-moving phases" in text
        assert "1 regression(s)" in text

    def test_invalid_parameters_rejected(self):
        s = self._session({"a": [1.0]})
        with pytest.raises(ValueError, match="tolerance"):
            compare_sessions(s, s, tolerance=0.0)
        with pytest.raises(ValueError, match="confidence"):
            compare_sessions(s, s, confidence=1.5)


class TestJoinEdgeCases:
    """Satellite: GEMM-event/span join edge cases."""

    def test_events_outside_any_span_in_gemm_by_phase(self, tmp_path):
        with obs.collect() as session:
            with obs.span("run"):
                with obs.span("inner"):
                    obs.gemm_event(4, 4, 4, tag="t", engine="sgemm",
                                   op="gemm", seconds=0.1)
            obs.gemm_event(4, 4, 4, tag="t", engine="sgemm",
                           op="gemm", seconds=0.2)
        path = obs.write_manifest(session, str(tmp_path / "m.jsonl"))
        man = obs.load_manifest(path)
        by_phase = man.gemm_by_phase()
        # The orphan event maps to no phase but must not crash or be
        # silently folded into an unrelated phase.
        assert by_phase["run/inner"]["calls"] == 1
        assert sum(slot["calls"] for slot in by_phase.values()) == 1

    def test_nested_collectors_do_not_cross_attribute(self, rng):
        eng = SgemmEngine()
        a = rng.standard_normal((4, 4)).astype(np.float32)
        with obs.collect() as outer:
            with obs.span("outer_phase"):
                with obs.collect() as inner:
                    with obs.span("inner_phase"):
                        eng.gemm(a, a, tag="t")
                eng.gemm(a, a, tag="t2")
        assert [e.span_path for e in inner.gemm_events] == ["inner_phase"]
        # The outer collector sees only the event recorded while active.
        assert [e.span_path for e in outer.gemm_events] == ["outer_phase"]

    def test_zero_duration_spans_in_time_by_path(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": SCHEMA_VERSION, "wall": 1.0}) + "\n"
            + json.dumps({"kind": "span", "name": "z", "path": "z",
                          "start": 0.0, "duration": 0.0, "depth": 0}) + "\n"
            + json.dumps({"kind": "span", "name": "z", "path": "z",
                          "start": 0.5, "duration": 0.0, "depth": 0}) + "\n"
        )
        man = obs.load_manifest(str(path))
        assert man.time_by_path() == {"z": 0.0}
        assert man.phase_paths() == ["z"]
        assert man.coverage() == 0.0  # falls back to meta wall, no div-by-zero
        # And the exporters accept it.
        assert to_collapsed_stacks(man) == "z 0\n"
        assert to_chrome_trace(man)["traceEvents"]


class TestManifestSchemaGuards:
    """Satellite: graceful degradation on older/foreign manifests."""

    def test_missing_schema_field_is_clear_error(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps({"kind": "meta", "label": "x"}) + "\n")
        with pytest.raises(ValueError, match="schema-version"):
            obs.load_manifest(str(path))

    def test_too_old_schema_rejected(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": MIN_SCHEMA_VERSION - 1}) + "\n"
        )
        with pytest.raises(ValueError, match="older"):
            obs.load_manifest(str(path))

    def test_span_missing_field_is_clear_error(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": SCHEMA_VERSION}) + "\n"
            + json.dumps({"kind": "span", "name": "x", "path": "x"}) + "\n"
        )
        with pytest.raises(ValueError, match="missing field"):
            obs.load_manifest(str(path))

    def test_report_cli_degrades_gracefully(self, tmp_path, capsys):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({"kind": "meta", "label": "pre"}) + "\n")
        assert obs_main(["report", str(path)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "schema" in err

    def test_v1_manifests_still_load(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": 1, "label": "v1",
                        "wall": 0.5}) + "\n"
        )
        assert obs.load_manifest(str(path)).label == "v1"


class TestSpanCoverageSatellites:
    """Satellite: spans in the refine and SVD drivers."""

    def test_refined_syevd_spans(self, rng):
        from repro.refine import refined_syevd

        a = rng.standard_normal((24, 24))
        a = (a + a.T) * 0.5
        with obs.collect() as session:
            refined_syevd(a, b=2, nb=4, precision="fp32", refine_iterations=2)
        paths = {s.path for s in session.spans}
        assert "refined_syevd" in paths
        assert "refined_syevd/base_evd" in paths
        assert "refined_syevd/refine" in paths
        sweeps = [s for s in session.spans
                  if s.path == "refined_syevd/refine/refine.sweep"]
        assert len(sweeps) == 2
        assert [s.meta["sweep"] for s in sweeps] == [0, 1]

    def test_svd_direct_spans(self, rng):
        from repro.svd import svd_direct

        with obs.collect() as session:
            svd_direct(rng.standard_normal((20, 12)))
        paths = {s.path for s in session.spans}
        assert {"svd_direct", "svd_direct/bidiagonalize",
                "svd_direct/gk_tridiag_solve",
                "svd_direct/assemble_factors"} <= paths

    def test_svd_via_evd_spans(self, rng):
        from repro.svd import svd_via_evd

        a = rng.standard_normal((16, 10))
        for method in ("gram", "jordan_wielandt"):
            with obs.collect() as session:
                svd_via_evd(a, method=method, b=2)
            roots = session.roots()
            assert [s.name for s in roots] == ["svd_via_evd"]
            assert roots[0].meta["method"] == method
            paths = {s.path for s in session.spans}
            assert {"svd_via_evd/svd.reduce", "svd_via_evd/svd.inner_evd",
                    "svd_via_evd/svd.recover_factors"} <= paths

    def test_randomized_drivers_span(self, rng):
        from repro.svd import block_lanczos_eig, randomized_eig, randomized_svd

        a = rng.standard_normal((24, 16))
        sym = a[:16, :] + a[:16, :].T
        with obs.collect() as session:
            randomized_svd(a, 3, rng=rng)
            randomized_eig(sym, 3, rng=rng)
            block_lanczos_eig(sym, 3, rng=rng)
        roots = [s.path for s in session.roots()]
        assert roots == ["randomized_svd", "randomized_eig", "block_lanczos_eig"]
        paths = {s.path for s in session.spans}
        assert "randomized_svd/rand.sketch" in paths
        assert "randomized_eig/rand.power" in paths
        assert "block_lanczos_eig/lanczos.basis" in paths


class TestAnalyticsCli:
    def test_attribution_cli(self, tmp_path, capsys):
        path = _syevd_manifest(tmp_path)
        assert obs_main(["attribution", path]) == 0
        out = capsys.readouterr().out
        assert "syevd/sbr" in out and "efficiency" in out

    def test_export_chrome_cli(self, tmp_path, capsys):
        path = _syevd_manifest(tmp_path)
        out_file = str(tmp_path / "trace.json")
        assert obs_main(["export", "--chrome", path, "-o", out_file]) == 0
        with open(out_file) as fh:
            trace = json.load(fh)
        assert "traceEvents" in trace
        assert all(ev["ph"] in ("X", "M") for ev in trace["traceEvents"])

    def test_export_flame_cli(self, tmp_path, capsys):
        path = _syevd_manifest(tmp_path)
        assert obs_main(["export", "--flame", path]) == 0
        out = capsys.readouterr().out
        assert "syevd;sbr" in out

    def test_export_requires_format(self, tmp_path):
        path = _syevd_manifest(tmp_path)
        with pytest.raises(SystemExit):
            obs_main(["export", path])

    def test_bench_cli_writes_session(self, tmp_path, capsys, monkeypatch):
        import repro.obs.analytics.benchstore as benchstore

        monkeypatch.setitem(
            benchstore.SUITES, "smoke",
            (BenchScenario("tiny", n=24, b=2, nb=4),),
        )
        out = str(tmp_path / "BENCH_smoke.json")
        assert obs_main(["bench", "--suite", "smoke", "--repeats", "1",
                         "--out", out]) == 0
        session = load_session(out)
        assert session["suite"] == "smoke"
        assert "bench session written" in capsys.readouterr().out

    def test_regress_cli_exit_codes(self, tmp_path, capsys):
        def write(name, scale):
            session = {
                "kind": "bench_session", "schema": 1, "suite": "smoke",
                "created": "t", "repeats": 3, "env": {},
                "scenarios": [{"key": "a", "config": {},
                               "wall": [scale, scale, scale], "phases": {}}],
            }
            return write_session(session, str(tmp_path / name))

        base = write("base.json", 1.0)
        same = write("same.json", 1.0)
        slow = write("slow.json", 2.0)
        assert obs_main(["regress", base, same]) == 0
        assert obs_main(["regress", base, slow]) == 2
        assert "REGRESSION" in capsys.readouterr().out

    def test_regress_cli_bad_file(self, tmp_path, capsys):
        p = tmp_path / "x.json"
        p.write_text("{}")
        assert obs_main(["regress", str(p), str(p)]) == 1
        assert "error:" in capsys.readouterr().err


class TestMakeSession:
    """make_session: external producers (the serving layer) emit rows
    through the same bench-store schema as solver re-runs."""

    def test_builds_valid_session(self, tmp_path):
        from repro.obs.analytics.benchstore import (
            load_session,
            make_session,
            write_session,
        )
        rows = [{"key": "serve-standard", "wall": [0.1, 0.2], "p50": 0.15}]
        session = make_session("serve", rows, extra={"note": "soak"})
        assert session["kind"] == "bench_session"
        assert session["suite"] == "serve"
        assert session["note"] == "soak"
        path = write_session(session, str(tmp_path / "BENCH_serve.json"))
        loaded = load_session(path)
        assert loaded["scenarios"][0]["key"] == "serve-standard"

    def test_rejects_rows_missing_key_or_wall(self):
        from repro.obs.analytics.benchstore import make_session
        import pytest
        with pytest.raises(ValueError, match="key"):
            make_session("serve", [{"wall": [0.1]}])
        with pytest.raises(ValueError, match="wall"):
            make_session("serve", [{"key": "x"}])
