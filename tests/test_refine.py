"""Tests for mixed-precision eigenpair refinement (the approximate-iterate
scheme of the paper's §1/§7 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eig import syevd_2stage
from repro.errors import ConfigurationError, ShapeError
from repro.matrices import generate_symmetric
from repro.metrics import eigenvalue_error, orthogonality_error
from repro.refine import rayleigh_refine, refine_eigenpairs, refined_syevd
from tests.conftest import random_symmetric


class TestRefineEigenpairs:
    @pytest.mark.parametrize(
        "dist,cond",
        [("geo", 1e3), ("arith", 1e5), ("cluster1", 1e5), ("cluster0", 1e5), ("normal", 1.0)],
    )
    def test_two_sweeps_reach_fp64(self, dist, cond):
        rng = np.random.default_rng(17)
        a, lam_true = generate_symmetric(96, distribution=dist, cond=cond, rng=rng)
        base = syevd_2stage(a, b=8, nb=32, precision="fp16_tc")
        lam, x = refine_eigenpairs(a, base.eigenvectors, iterations=2)
        assert eigenvalue_error(lam_true, lam) < 1e-12
        assert orthogonality_error(x) < 1e-10
        assert float(np.abs(a @ x - x * lam).max()) < 1e-9

    def test_quadratic_convergence(self, rng):
        a, lam_true = generate_symmetric(80, distribution="uniform", rng=rng)
        base = syevd_2stage(a, b=8, nb=16, precision="fp16_tc")
        errs = []
        for it in (0, 1, 2):
            lam, x = refine_eigenpairs(a, base.eigenvectors, iterations=it)
            errs.append(float(np.abs(a @ x - x * lam).max()))
        assert errs[1] < errs[0] / 10
        assert errs[2] < errs[1] / 10

    def test_zero_iterations_is_rayleigh_cleanup(self, rng):
        a = random_symmetric(32, rng)
        base = syevd_2stage(a, b=4, nb=8, precision="fp32")
        lam, x = refine_eigenpairs(a, base.eigenvectors, iterations=0)
        assert lam.shape == (32,)
        assert np.all(np.diff(lam) >= -1e-12)

    def test_exact_input_stays_exact(self, rng):
        a = random_symmetric(48, rng)
        lam_ref, v_ref = np.linalg.eigh(a)
        lam, x = refine_eigenpairs(a, v_ref, iterations=1)
        np.testing.assert_allclose(lam, lam_ref, atol=1e-12)
        assert orthogonality_error(x) < 1e-13

    def test_shape_checks(self, rng):
        a = random_symmetric(8, rng)
        with pytest.raises(ShapeError):
            refine_eigenpairs(a, np.eye(6))
        with pytest.raises(ShapeError):
            refine_eigenpairs(a, np.eye(8), iterations=-1)

    def test_explicit_cluster_tol(self, rng):
        a, _ = generate_symmetric(48, distribution="cluster1", cond=1e5, rng=rng)
        base = syevd_2stage(a, b=4, nb=16, precision="fp32")
        lam, x = refine_eigenpairs(a, base.eigenvectors, iterations=2, cluster_tol=1e-6)
        assert float(np.abs(a @ x - x * lam).max()) < 1e-8


class TestRayleighRefine:
    def test_converges_cubically(self, rng):
        a, lam_true = generate_symmetric(64, distribution="arith", cond=100, rng=rng)
        _, v_ref = np.linalg.eigh(a)
        x0 = v_ref[:, -1] + 1e-3 * rng.standard_normal(64)
        lam, x = rayleigh_refine(a, x0, iterations=3)
        assert abs(lam - lam_true[-1]) < 1e-12
        assert float(np.abs(a @ x - lam * x).max()) < 1e-10

    def test_exact_start(self, rng):
        a = random_symmetric(16, rng)
        lam_ref, v_ref = np.linalg.eigh(a)
        lam, x = rayleigh_refine(a, v_ref[:, 0])
        assert abs(lam - lam_ref[0]) < 1e-12

    def test_rejects_zero_vector(self, rng):
        with pytest.raises(ShapeError):
            rayleigh_refine(random_symmetric(8, rng), np.zeros(8))

    def test_rejects_wrong_shape(self, rng):
        with pytest.raises(ShapeError):
            rayleigh_refine(random_symmetric(8, rng), np.ones(9))


class TestRefinedSyevd:
    def test_tc_pipeline_reaches_fp64(self):
        rng = np.random.default_rng(23)
        a, lam_true = generate_symmetric(96, distribution="geo", cond=1e3, rng=rng)
        res = refined_syevd(a, b=8, nb=32, precision="fp16_tc", refine_iterations=2)
        assert eigenvalue_error(lam_true, res.eigenvalues) < 1e-12
        x = res.eigenvectors
        assert float(np.abs(a @ x - x * res.eigenvalues).max()) < 1e-9

    def test_beats_unrefined_by_many_digits(self):
        rng = np.random.default_rng(29)
        a, lam_true = generate_symmetric(64, distribution="uniform", rng=rng)
        raw = syevd_2stage(a, b=8, nb=16, precision="fp16_tc")
        ref = refined_syevd(a, b=8, nb=16, precision="fp16_tc", refine_iterations=2)
        e_raw = eigenvalue_error(lam_true, raw.eigenvalues)
        e_ref = eigenvalue_error(lam_true, ref.eigenvalues)
        assert e_ref < e_raw / 1e3

    def test_keeps_intermediates(self, rng):
        a = random_symmetric(48, rng)
        res = refined_syevd(a, b=4, nb=16, precision="fp32", refine_iterations=1)
        assert res.sbr is not None
        assert res.tridiagonal[0].shape == (48,)

    def test_rejects_negative_iterations(self, rng):
        with pytest.raises(ConfigurationError):
            refined_syevd(random_symmetric(16, rng), b=4, refine_iterations=-1)
