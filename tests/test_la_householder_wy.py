"""Tests for Householder reflectors and WY accumulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gemm import Fp64Engine
from repro.la import (
    WYAccumulator,
    apply_q_left,
    apply_q_right,
    apply_qt_left,
    apply_reflector_left,
    apply_reflector_right,
    build_compact_wy,
    build_wy,
    extend_wy,
    make_reflector,
    reflector_matrix,
    wy_matrix,
)


class TestMakeReflector:
    def test_annihilates_below_first(self, rng):
        x = rng.standard_normal(10)
        v, beta, alpha = make_reflector(x)
        h = reflector_matrix(v, beta)
        hx = h @ x
        np.testing.assert_allclose(hx[1:], 0, atol=1e-13)
        assert np.isclose(abs(hx[0]), np.linalg.norm(x))
        assert np.isclose(hx[0], alpha)

    def test_v0_is_one(self, rng):
        v, _, _ = make_reflector(rng.standard_normal(7))
        assert v[0] == 1.0

    def test_orthogonal(self, rng):
        v, beta, _ = make_reflector(rng.standard_normal(6))
        h = reflector_matrix(v, beta)
        np.testing.assert_allclose(h @ h.T, np.eye(6), atol=1e-14)

    def test_already_reduced_vector(self):
        x = np.array([3.0, 0.0, 0.0])
        v, beta, alpha = make_reflector(x)
        assert beta == 0.0 and alpha == 3.0

    def test_length_one(self):
        v, beta, alpha = make_reflector(np.array([2.5]))
        assert beta == 0.0 and alpha == 2.5

    def test_sign_choice_avoids_cancellation(self):
        # alpha must have sign opposite to x[0].
        x = np.array([5.0, 1e-8])
        _, _, alpha = make_reflector(x)
        assert alpha < 0
        x = np.array([-5.0, 1e-8])
        _, _, alpha = make_reflector(x)
        assert alpha > 0

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            make_reflector(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            make_reflector(np.zeros((2, 2)))

    def test_float32_dtype_flow(self, rng):
        v, _, _ = make_reflector(rng.standard_normal(5).astype(np.float32))
        assert v.dtype == np.float32


class TestApplyReflector:
    def test_left_matches_dense(self, rng):
        a = rng.standard_normal((6, 4))
        v, beta, _ = make_reflector(rng.standard_normal(6))
        h = reflector_matrix(v, beta)
        expected = h @ a
        work = a.copy()
        apply_reflector_left(work, v, beta)
        np.testing.assert_allclose(work, expected, atol=1e-13)

    def test_right_matches_dense(self, rng):
        a = rng.standard_normal((4, 6))
        v, beta, _ = make_reflector(rng.standard_normal(6))
        h = reflector_matrix(v, beta)
        expected = a @ h
        work = a.copy()
        apply_reflector_right(work, v, beta)
        np.testing.assert_allclose(work, expected, atol=1e-13)

    def test_zero_beta_noop(self, rng):
        a = rng.standard_normal((5, 3))
        work = a.copy()
        apply_reflector_left(work, np.ones(5), 0.0)
        np.testing.assert_array_equal(work, a)

    def test_left_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            apply_reflector_left(rng.standard_normal((4, 3)), np.ones(5), 0.5)

    def test_right_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            apply_reflector_right(rng.standard_normal((3, 4)), np.ones(5), 0.5)

    def test_embedded_reflector_matrix(self, rng):
        v, beta, _ = make_reflector(rng.standard_normal(3))
        h = reflector_matrix(v, beta, n=5)
        np.testing.assert_array_equal(h[:2, :2], np.eye(2))
        np.testing.assert_allclose(h @ h.T, np.eye(5), atol=1e-14)

    def test_embedding_too_small(self, rng):
        v, beta, _ = make_reflector(rng.standard_normal(5))
        with pytest.raises(ShapeError):
            reflector_matrix(v, beta, n=3)


def _random_reflectors(m, k, rng):
    """k reflectors from a Householder QR of a random m×k matrix."""
    from repro.la import householder_qr

    v_cols, betas, _ = householder_qr(rng.standard_normal((m, k)))
    return v_cols, betas


class TestBuildWY:
    def test_q_equals_product_of_reflectors(self, rng):
        m, k = 12, 5
        v_cols, betas = _random_reflectors(m, k, rng)
        w, y = build_wy(v_cols, betas)
        q = wy_matrix(w, y)
        expected = np.eye(m)
        for j in range(k):  # H_1 H_2 ... H_k applied right-to-left
            h = reflector_matrix(v_cols[:, j], betas[j])
            expected = expected @ h
        np.testing.assert_allclose(q, expected, atol=1e-13)

    def test_q_orthogonal(self, rng):
        v_cols, betas = _random_reflectors(15, 6, rng)
        w, y = build_wy(v_cols, betas)
        q = wy_matrix(w, y)
        np.testing.assert_allclose(q.T @ q, np.eye(15), atol=1e-13)

    def test_y_equals_v(self, rng):
        v_cols, betas = _random_reflectors(8, 3, rng)
        _, y = build_wy(v_cols, betas)
        np.testing.assert_array_equal(y, v_cols)

    def test_single_reflector(self, rng):
        v, beta, _ = make_reflector(rng.standard_normal(6))
        w, y = build_wy(v[:, None], [beta])
        np.testing.assert_allclose(
            wy_matrix(w, y), reflector_matrix(v, beta), atol=1e-14
        )

    def test_betas_length_mismatch(self, rng):
        with pytest.raises(ShapeError):
            build_wy(rng.standard_normal((5, 2)), [0.5])


class TestCompactWY:
    def test_w_equals_y_t(self, rng):
        v_cols, betas = _random_reflectors(10, 4, rng)
        w, y = build_wy(v_cols, betas)
        t = build_compact_wy(v_cols, betas)
        np.testing.assert_allclose(w, y @ t, atol=1e-13)

    def test_t_upper_triangular(self, rng):
        v_cols, betas = _random_reflectors(10, 4, rng)
        t = build_compact_wy(v_cols, betas)
        np.testing.assert_array_equal(np.tril(t, -1), 0)

    def test_t_diagonal_is_betas(self, rng):
        v_cols, betas = _random_reflectors(10, 4, rng)
        t = build_compact_wy(v_cols, betas)
        np.testing.assert_allclose(np.diagonal(t), betas, atol=1e-14)


class TestExtendWY:
    def test_merge_equals_product(self, rng):
        m = 14
        v1, b1 = _random_reflectors(m, 3, rng)
        v2, b2 = _random_reflectors(m, 4, rng)
        w1, y1 = build_wy(v1, b1)
        w2, y2 = build_wy(v2, b2)
        w, y = extend_wy(w1, y1, w2, y2)
        np.testing.assert_allclose(
            wy_matrix(w, y), wy_matrix(w1, y1) @ wy_matrix(w2, y2), atol=1e-12
        )

    def test_shape_mismatch(self, rng):
        w = rng.standard_normal((5, 2))
        with pytest.raises(ShapeError):
            extend_wy(w, w, rng.standard_normal((6, 2)), rng.standard_normal((6, 2)))


class TestApplyQ:
    @pytest.fixture
    def wy_pair(self, rng):
        v_cols, betas = _random_reflectors(10, 4, rng)
        return build_wy(v_cols, betas)

    def test_apply_q_left(self, rng, wy_pair):
        w, y = wy_pair
        a = rng.standard_normal((10, 6))
        np.testing.assert_allclose(
            apply_q_left(a, w, y), wy_matrix(w, y) @ a, atol=1e-12
        )

    def test_apply_qt_left(self, rng, wy_pair):
        w, y = wy_pair
        a = rng.standard_normal((10, 6))
        np.testing.assert_allclose(
            apply_qt_left(a, w, y), wy_matrix(w, y).T @ a, atol=1e-12
        )

    def test_apply_q_right(self, rng, wy_pair):
        w, y = wy_pair
        a = rng.standard_normal((6, 10))
        np.testing.assert_allclose(
            apply_q_right(a, w, y), a @ wy_matrix(w, y), atol=1e-12
        )

    def test_left_then_qt_roundtrip(self, rng, wy_pair):
        w, y = wy_pair
        a = rng.standard_normal((10, 5))
        back = apply_qt_left(apply_q_left(a, w, y), w, y)
        np.testing.assert_allclose(back, a, atol=1e-12)


class TestWYAccumulator:
    def test_empty(self):
        acc = WYAccumulator(8)
        assert acc.ncols == 0
        assert acc.w.shape == (8, 0)

    def test_accumulation_matches_product(self, rng):
        m = 12
        acc = WYAccumulator(m, dtype=np.float64, engine=Fp64Engine())
        expected = np.eye(m)
        for k in (2, 3, 2):
            v, b = _random_reflectors(m, k, rng)
            w, y = build_wy(v, b)
            acc.append_block(w, y)
            expected = expected @ wy_matrix(w, y)
        np.testing.assert_allclose(wy_matrix(acc.w, acc.y), expected, atol=1e-12)

    def test_rejects_wrong_rows(self, rng):
        acc = WYAccumulator(8)
        with pytest.raises(ShapeError):
            acc.append_block(rng.standard_normal((6, 2)), rng.standard_normal((6, 2)))

    def test_rejects_bad_m(self):
        with pytest.raises(ShapeError):
            WYAccumulator(0)


class TestReflectorScaling:
    """Regression guards for the larfg-style rescaling path."""

    def test_subnormal_scale_input(self):
        x = np.array([3.27e-160, 3.27e-160])
        v, beta, alpha = make_reflector(x)
        h = reflector_matrix(v, beta)
        np.testing.assert_allclose(h @ h, np.eye(2), atol=1e-12)
        assert np.isclose(abs(alpha), np.linalg.norm(x), rtol=1e-10)

    def test_huge_scale_input(self):
        x = np.array([2.5e155, -1.0e155, 3.0e154])
        v, beta, alpha = make_reflector(x)
        h = reflector_matrix(v, beta)
        hx = h @ x
        np.testing.assert_allclose(hx[1:] / np.abs(alpha), 0, atol=1e-12)
        assert np.isfinite(alpha)

    def test_float32_small_scale(self):
        x = np.array([3e-22, 4e-22], dtype=np.float32)
        v, beta, alpha = make_reflector(x)
        assert np.isclose(abs(alpha), 5e-22, rtol=1e-5)
        assert v.dtype == np.float32
