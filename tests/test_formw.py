"""Tests for recursive W formation (Algorithm 2) and Q assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gemm import Fp64Engine
from repro.la import build_wy, householder_qr, wy_matrix
from repro.sbr import WYBlock, form_q_from_blocks, form_wy_tree
from repro.sbr.wy import sbr_wy
from tests.conftest import random_symmetric


def _random_wy(m, k, rng):
    v, b, _ = householder_qr(rng.standard_normal((m, k)))
    return build_wy(v, b)


class TestFormWyTree:
    @pytest.mark.parametrize("blocks", [1, 2, 3, 5, 8])
    def test_tree_equals_sequential_product(self, rng, blocks):
        m = 24
        pairs = [_random_wy(m, 3, rng) for _ in range(blocks)]
        w, y = form_wy_tree(pairs, engine=Fp64Engine())
        expected = np.eye(m)
        for wp, yp in pairs:
            expected = expected @ wy_matrix(wp, yp)
        np.testing.assert_allclose(wy_matrix(w, y), expected, atol=1e-12)

    def test_column_count(self, rng):
        pairs = [_random_wy(16, 2, rng), _random_wy(16, 3, rng)]
        w, y = form_wy_tree(pairs, engine=Fp64Engine())
        assert w.shape == (16, 5) and y.shape == (16, 5)

    def test_empty_list(self):
        with pytest.raises(ShapeError):
            form_wy_tree([])

    def test_mismatched_rows(self, rng):
        with pytest.raises(ShapeError):
            form_wy_tree([_random_wy(16, 2, rng), _random_wy(12, 2, rng)])

    def test_records_merge_gemms(self, rng):
        eng = Fp64Engine(record=True)
        form_wy_tree([_random_wy(16, 2, rng) for _ in range(4)], engine=eng)
        assert eng.trace.tags()["formw"] == 2 * 3  # 3 merges, 2 GEMMs each


class TestFormQFromBlocks:
    def _blocks(self, rng):
        w1, y1 = _random_wy(24, 4, rng)
        w2, y2 = _random_wy(16, 4, rng)
        return [WYBlock(offset=8, w=w1, y=y1), WYBlock(offset=16, w=w2, y=y2)]

    def _expected(self, blocks, n):
        q = np.eye(n)
        for blk in blocks:
            emb = np.eye(n)
            emb[blk.offset :, blk.offset :] = wy_matrix(
                blk.w.astype(np.float64), blk.y.astype(np.float64)
            )
            q = q @ emb
        return q

    @pytest.mark.parametrize("method", ["tree", "forward"])
    def test_assembly(self, rng, method):
        blocks = self._blocks(rng)
        q = form_q_from_blocks(blocks, 32, engine=Fp64Engine(), method=method, dtype=np.float64)
        np.testing.assert_allclose(q, self._expected(blocks, 32), atol=1e-12)

    def test_methods_agree(self, rng):
        blocks = self._blocks(rng)
        q1 = form_q_from_blocks(blocks, 32, engine=Fp64Engine(), method="tree", dtype=np.float64)
        q2 = form_q_from_blocks(blocks, 32, engine=Fp64Engine(), method="forward", dtype=np.float64)
        np.testing.assert_allclose(q1, q2, atol=1e-12)

    def test_empty_blocks_gives_identity(self):
        np.testing.assert_array_equal(form_q_from_blocks([], 8, dtype=np.float64), np.eye(8))

    def test_bad_method(self, rng):
        with pytest.raises(ShapeError):
            form_q_from_blocks(self._blocks(rng), 32, method="diagonal")

    def test_orthogonality(self, rng):
        q = form_q_from_blocks(self._blocks(rng), 32, engine=Fp64Engine(), dtype=np.float64)
        np.testing.assert_allclose(q.T @ q, np.eye(32), atol=1e-12)

    def test_back_transformation_flops_favor_tree(self, rng):
        # The paper's §4.4 rationale: tree formation squeezes GEMMs.  At the
        # trace level, the tree produces fewer, larger GEMMs than forward
        # accumulation applied block by block.
        a = random_symmetric(96, rng)
        eng_tree = Fp64Engine(record=True)
        sbr_wy(a, 8, 32, engine=eng_tree, want_q=True, q_method="tree", panel="blocked_qr")
        eng_fwd = Fp64Engine(record=True)
        sbr_wy(a, 8, 32, engine=eng_fwd, want_q=True, q_method="forward", panel="blocked_qr")
        n_tree = len(eng_tree.trace.by_tag("form_q")) + len(eng_tree.trace.by_tag("formw"))
        n_fwd = len(eng_fwd.trace.by_tag("form_q"))
        assert n_tree <= n_fwd + 2
