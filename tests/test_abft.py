"""Tests for the online ABFT layer (``repro.resilience.abft``).

Covers the full detect → locate → correct → recompute → escalate ladder
at three levels: the checker in isolation (checksum math, localization,
Freivalds probe, syr2k fusion), the driver integration (``abft=`` knob,
bitwise-identical correction of injected bit flips, ``SdcError``
propagation, zero-overhead off), and the serving layer (SDC retries as a
distinct taxonomy class).  Plus the satellites: the promoted checkpoint
checksum helpers, the ``verify_abft`` tolerance floor, ``backoff()``
jitter determinism, and the manifest/report/CLI surfaces.
"""

from __future__ import annotations

import json
import tracemalloc

import numpy as np
import pytest

from conftest import random_symmetric
from repro.errors import (
    CheckpointCorruptionError,
    ConfigurationError,
    NumericalBreakdownError,
    SdcError,
)
from repro.gemm.engine import make_engine
from repro.precision.modes import Precision
from repro.resilience import FaultInjector, FaultSpec, backoff
from repro.resilience.abft import (
    ABFT_MODES,
    AbftChecker,
    AbftPolicy,
    AbftReport,
    Syr2kPre,
    abft_signature,
    checksum_crc,
    sum_vectors,
    verify_abft,
)
from repro.resilience.context import ResilienceContext
from repro.resilience.detectors import DetectorConfig
from repro.resilience.faults import FAULT_KINDS, _TOP_EXPONENT_BIT
from repro.eig.driver import syevd_2stage


def _gemm_triplet(rng, m=12, k=8, n=10, dtype=np.float32):
    a = rng.standard_normal((m, k)).astype(dtype)
    b = rng.standard_normal((k, n)).astype(dtype)
    return a, b, (a @ b).astype(dtype)


# ---------------------------------------------------------------------------
# satellite 1: promoted checksum helpers + back-compat re-exports
# ---------------------------------------------------------------------------
class TestPromotedHelpers:
    def test_ckpt_module_reexports_the_same_objects(self):
        from repro.ckpt import abft as ckpt_abft

        assert ckpt_abft.abft_signature is abft_signature
        assert ckpt_abft.verify_abft is verify_abft
        assert ckpt_abft.sum_vectors is sum_vectors
        assert ckpt_abft.checksum_crc is checksum_crc
        # Pre-promotion private names stay importable for old callers.
        assert ckpt_abft._sum_vectors is sum_vectors
        assert ckpt_abft._crc is checksum_crc

    def test_top_level_exports(self):
        import repro
        import repro.resilience as res

        assert repro.SdcError is SdcError
        assert repro.AbftPolicy is AbftPolicy
        assert repro.AbftReport is AbftReport
        for name in ("ABFT_MODES", "AbftChecker", "AbftPolicy", "AbftReport",
                     "Syr2kPre", "abft_signature", "verify_abft",
                     "sum_vectors", "checksum_crc"):
            assert name in res.__all__

    def test_sum_vectors_math(self):
        arr = np.arange(6.0, dtype=np.float32).reshape(2, 3)
        rows, cols = sum_vectors(arr)
        assert rows.dtype == np.float64 and cols.dtype == np.float64
        np.testing.assert_array_equal(rows, [3.0, 12.0])
        np.testing.assert_array_equal(cols, [3.0, 5.0, 7.0])

    def test_checksum_crc_changes_with_content(self):
        vec = np.arange(8.0)
        c = checksum_crc(vec)
        assert c == checksum_crc(vec.copy())
        vec2 = vec.copy()
        vec2[3] += 1.0
        assert checksum_crc(vec2) != c

    def test_signature_roundtrip(self, rng):
        arr = rng.standard_normal((9, 7)).astype(np.float32)
        verify_abft("x", arr, abft_signature(arr))  # no raise


# ---------------------------------------------------------------------------
# satellite 2: verify_abft tolerance floored at the storage dtype's eps
# ---------------------------------------------------------------------------
class TestVerifyAbftTolerance:
    def test_fp16_total_within_effective_eps_passes(self, rng):
        # An ill-scaled FP16 payload: the float64 re-reduction of the
        # grand total may legally differ across summation orders by
        # ~eps16·‖A‖₁.  A perturbation inside that window must pass.
        arr = (rng.standard_normal((32, 32)) * 1e3).astype(np.float16)
        sig = abft_signature(arr)
        tol = float(np.finfo(np.float16).eps) * float(
            np.abs(arr.astype(np.float64)).sum())
        ref = float.fromhex(sig["total"])
        near = dict(sig, total=float(ref + 0.25 * tol).hex())
        verify_abft("x", arr, near)  # within the floor: no raise

    def test_total_beyond_tolerance_raises(self, rng):
        arr = (rng.standard_normal((32, 32)) * 1e3).astype(np.float16)
        sig = abft_signature(arr)
        tol = float(np.finfo(np.float16).eps) * float(
            np.abs(arr.astype(np.float64)).sum())
        far = dict(sig, total=float(float.fromhex(sig["total"]) + 10 * tol).hex())
        with pytest.raises(CheckpointCorruptionError) as ei:
            verify_abft("x", arr, far)
        assert ei.value.field == "abft:x.total"

    def test_crc_checks_stay_exact(self, rng):
        # The tolerance applies ONLY to the grand total; any bit change
        # in the payload still trips the exact row CRC.
        arr = (rng.standard_normal((16, 16)) * 1e3).astype(np.float16)
        sig = abft_signature(arr)
        bad = arr.copy()
        bad.view(np.uint16)[3, 4] ^= 1  # one LSB mantissa bit
        with pytest.raises(CheckpointCorruptionError) as ei:
            verify_abft("x", bad, sig)
        assert ei.value.field in ("abft:x.row", "abft:x.col")

    def test_shape_and_dtype_mismatch_fields(self, rng):
        arr = rng.standard_normal((4, 4)).astype(np.float32)
        sig = abft_signature(arr)
        with pytest.raises(CheckpointCorruptionError) as ei:
            verify_abft("x", arr[:3], sig)
        assert ei.value.field == "abft:x.shape"
        with pytest.raises(CheckpointCorruptionError) as ei:
            verify_abft("x", arr.astype(np.float64), sig)
        assert ei.value.field == "abft:x.dtype"


# ---------------------------------------------------------------------------
# the bitflip fault kind
# ---------------------------------------------------------------------------
class TestBitflipFault:
    def test_registered_kind(self):
        assert "bitflip" in FAULT_KINDS

    def _flip(self, seed=5, **kw):
        inj = FaultInjector(FaultSpec(site="t", kind="bitflip", seed=seed, **kw))
        arr = np.random.default_rng(0).standard_normal((8, 8)).astype(np.float32)
        out = inj.apply("t", arr.copy())
        return arr, out, inj

    def test_flips_exactly_one_bit_of_one_element(self):
        arr, out, inj = self._flip()
        diff = np.argwhere(arr != out)
        assert len(diff) == 1
        r, c = diff[0]
        xor = int(arr.view(np.uint32)[r, c] ^ out.view(np.uint32)[r, c])
        assert bin(xor).count("1") == 1
        # Default bit is the dtype's top exponent bit.
        assert xor == 1 << _TOP_EXPONENT_BIT[4]
        assert len(inj.fired) == 1 and inj.fired[0].kind == "bitflip"

    def test_deterministic_under_seed(self):
        _, out1, _ = self._flip(seed=9)
        _, out2, _ = self._flip(seed=9)
        np.testing.assert_array_equal(out1, out2)
        _, out3, _ = self._flip(seed=10)
        assert not np.array_equal(out1, out3)

    def test_explicit_bit_zero_flips_mantissa_lsb(self):
        arr, out, _ = self._flip(bit=0)
        r, c = np.argwhere(arr != out)[0]
        assert int(arr.view(np.uint32)[r, c] ^ out.view(np.uint32)[r, c]) == 1

    def test_negative_bit_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(site="t", kind="bitflip", bit=-1)

    def test_transient_by_default(self):
        inj = FaultInjector(FaultSpec(site="t", kind="bitflip", seed=1))
        arr = np.ones((4, 4), dtype=np.float32)
        first = inj.apply("t", arr.copy())
        second = inj.apply("t", arr.copy())
        assert not np.array_equal(first, arr)
        np.testing.assert_array_equal(second, arr)  # count=1 exhausted


# ---------------------------------------------------------------------------
# the checker in isolation
# ---------------------------------------------------------------------------
class TestAbftCheckerUnit:
    def test_clean_gemm_verifies_without_false_positive(self, rng):
        for dtype, prec in ((np.float32, Precision.FP32),
                            (np.float64, Precision.FP64)):
            a, b, out = _gemm_triplet(rng, 48, 64, 40, dtype)
            ck = AbftChecker(AbftPolicy(mode="detect"))
            res = ck.guard_gemm(out, a, b, precision=prec, site="t")
            assert res is out
            assert ck.report.verified == 1 and ck.report.clean

    def test_detect_localizes_single_element(self, rng):
        a, b, out = _gemm_triplet(rng)
        bad = out.copy()
        bad[3, 5] += 100.0
        ck = AbftChecker(AbftPolicy(mode="detect"))
        with pytest.raises(SdcError) as ei:
            ck.guard_gemm(bad, a, b, precision=Precision.FP32, site="wy_right")
        exc = ei.value
        assert (exc.row, exc.col) == (3, 5)
        assert exc.site == "wy_right" and exc.call_index == 0
        assert exc.op == "gemm" and exc.detector == "abft"
        assert ck.report.detected == 1 and ck.report.raised == 1

    def test_correct_patches_single_element_bitwise(self, rng):
        a, b, out = _gemm_triplet(rng)
        bad = out.copy()
        bad[2, 7] += 50.0
        calls = []

        def recompute():
            calls.append(1)
            return out.copy()

        ck = AbftChecker(AbftPolicy(mode="correct"))
        res = ck.guard_gemm(bad, a, b, precision=Precision.FP32, site="t",
                            recompute=recompute)
        assert res is bad
        np.testing.assert_array_equal(bad, out)  # bitwise restored
        assert ck.report.corrected == 1 and ck.report.detected == 1
        assert ck.report.raised == 0
        assert len(calls) == 1  # the replay sourced the patched value
        ev = ck.report.events[0]
        assert ev.action == "corrected" and (ev.row, ev.col) == (2, 7)

    def test_multi_element_damage_recomputes(self, rng):
        a, b, out = _gemm_triplet(rng)
        bad = out.copy()
        bad[1, 2] += 40.0
        bad[4, 6] -= 40.0  # two rows × two cols: not localizable
        ck = AbftChecker(AbftPolicy(mode="correct"))
        res = ck.guard_gemm(bad, a, b, precision=Precision.FP32, site="t",
                            recompute=lambda: out.copy())
        np.testing.assert_array_equal(res, out)
        assert ck.report.recomputed == 1 and ck.report.corrected == 0

    def test_persistent_damage_escalates_after_max_recomputes(self, rng):
        a, b, out = _gemm_triplet(rng)
        bad = out.copy()
        bad[0, 0] += 30.0
        calls = []

        def still_bad():
            calls.append(1)
            return bad.copy()  # the fault survives every replay

        policy = AbftPolicy(mode="correct", max_recomputes=2)
        ck = AbftChecker(policy)
        with pytest.raises(SdcError) as ei:
            ck.guard_gemm(bad, a, b, precision=Precision.FP32, site="t",
                          recompute=still_bad)
        assert "persistent" in str(ei.value)
        assert ck.report.raised == 1
        assert len(calls) >= policy.max_recomputes
        assert isinstance(ei.value, NumericalBreakdownError)  # ladder-compatible

    def test_detect_mode_never_calls_recompute(self, rng):
        a, b, out = _gemm_triplet(rng)
        bad = out.copy()
        bad[0, 1] += 10.0
        ck = AbftChecker(AbftPolicy(mode="detect"))
        with pytest.raises(SdcError):
            ck.guard_gemm(bad, a, b, precision=Precision.FP32, site="t",
                          recompute=lambda: pytest.fail("detect mode replayed"))

    def test_guard_copy_exact_and_nan_safe(self, rng):
        ck = AbftChecker(AbftPolicy(mode="detect"))
        arr = rng.standard_normal((6, 6)).astype(np.float32)
        arr[2, 2] = np.nan
        assert ck.guard_copy(arr.copy(), arr, site="bulge") is not None
        bad = arr.copy()
        bad[1, 3] += 1.0
        with pytest.raises(SdcError) as ei:
            ck.guard_copy(bad, arr, site="bulge")
        assert ei.value.op == "copy" and ei.value.site == "bulge"

    def test_guard_copy_correct_mode_patches_from_ref(self, rng):
        ck = AbftChecker(AbftPolicy(mode="correct"))
        ref = rng.standard_normal((6, 6)).astype(np.float32)
        bad = ref.copy()
        bad[4, 1] -= 3.0
        res = ck.guard_copy(bad, ref, site="bulge")
        np.testing.assert_array_equal(res, ref)
        assert ck.report.corrected + ck.report.recomputed >= 1

    def test_syr2k_fused_update_with_pre_checksums(self, rng):
        y = rng.standard_normal((10, 3)).astype(np.float64)
        z = rng.standard_normal((10, 3)).astype(np.float64)
        c = rng.standard_normal((10, 10))
        c = (c + c.T).astype(np.float64)
        alpha, beta = 1.0, 0.5
        pre = Syr2kPre.capture(c)
        clean = beta * c + alpha * (y @ z.T + z @ y.T)
        ck = AbftChecker(AbftPolicy(mode="detect"))
        ck.guard_syr2k(clean.copy(), y, z, precision=Precision.FP64,
                       site="s", alpha=alpha, beta=beta, pre=pre)
        assert ck.report.verified == 1 and ck.report.clean
        bad = clean.copy()
        bad[2, 5] += 10.0
        ck2 = AbftChecker(AbftPolicy(mode="correct"))
        res = ck2.guard_syr2k(bad, y, z, precision=Precision.FP64,
                              site="s", alpha=alpha, beta=beta, pre=pre,
                              recompute=lambda: clean.copy())
        np.testing.assert_array_equal(res, clean)
        assert ck2.report.detected == 1

    def test_call_index_counts_per_site(self, rng):
        a, b, out = _gemm_triplet(rng)
        ck = AbftChecker(AbftPolicy(mode="detect"))
        ck.guard_gemm(out.copy(), a, b, precision=Precision.FP32, site="t")
        bad = out.copy()
        bad[0, 0] += 5.0
        with pytest.raises(SdcError) as ei:
            ck.guard_gemm(bad, a, b, precision=Precision.FP32, site="t")
        assert ei.value.call_index == 1  # second launch at this site


# ---------------------------------------------------------------------------
# Freivalds probe for batched launches
# ---------------------------------------------------------------------------
class TestFreivaldsProbe:
    def _stack(self, rng, batch=4, dtype=np.float32):
        a = rng.standard_normal((batch, 8, 6)).astype(dtype)
        b = rng.standard_normal((batch, 6, 7)).astype(dtype)
        return a, b, np.matmul(a, b).astype(dtype)

    def test_large_stack_uses_probe(self, rng):
        a, b, out = self._stack(rng, batch=4)
        ck = AbftChecker(AbftPolicy(mode="detect", freivalds_batch=4))
        ck.guard_batched(out, a, b, precision=Precision.FP32, site="bt")
        assert ck.report.probed == 1 and ck.report.verified == 0

    def test_small_stack_uses_full_checksums(self, rng):
        a, b, out = self._stack(rng, batch=2)
        ck = AbftChecker(AbftPolicy(mode="detect", freivalds_batch=4))
        ck.guard_batched(out, a, b, precision=Precision.FP32, site="bt")
        assert ck.report.verified == 1 and ck.report.probed == 0

    def test_probe_hit_localizes_and_raises_in_detect(self, rng):
        a, b, out = self._stack(rng, batch=4)
        bad = out.copy()
        bad[2, 3, 4] += 1e4
        ck = AbftChecker(AbftPolicy(mode="detect", freivalds_batch=4))
        with pytest.raises(SdcError) as ei:
            ck.guard_batched(bad, a, b, precision=Precision.FP32, site="bt")
        assert ei.value.op == "gemm_batched" and ei.value.site == "bt"
        assert ck.report.detected == 1

    def test_probe_hit_corrects_in_correct_mode(self, rng):
        a, b, out = self._stack(rng, batch=4)
        bad = out.copy()
        bad[1, 0, 2] -= 1e4
        ck = AbftChecker(AbftPolicy(mode="correct", freivalds_batch=4))
        res = ck.guard_batched(bad, a, b, precision=Precision.FP32, site="bt",
                               recompute=lambda: out.copy())
        np.testing.assert_array_equal(res, out)
        assert ck.report.corrected + ck.report.recomputed >= 1

    def test_probe_disabled_with_zero_threshold(self, rng):
        a, b, out = self._stack(rng, batch=6)
        ck = AbftChecker(AbftPolicy(mode="detect", freivalds_batch=0))
        ck.guard_batched(out, a, b, precision=Precision.FP32, site="bt")
        assert ck.report.verified == 1 and ck.report.probed == 0


# ---------------------------------------------------------------------------
# policy knob
# ---------------------------------------------------------------------------
class TestAbftPolicy:
    def test_modes_tuple(self):
        assert ABFT_MODES == ("off", "detect", "correct")

    def test_from_knob(self):
        assert AbftPolicy.from_knob(None) is None
        assert AbftPolicy.from_knob("off") is None
        assert AbftPolicy.from_knob(False) is None
        assert AbftPolicy.from_knob("detect").mode == "detect"
        assert AbftPolicy.from_knob("correct").mode == "correct"
        pol = AbftPolicy(mode="correct", freivalds_batch=0)
        assert AbftPolicy.from_knob(pol) is pol

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            AbftPolicy.from_knob("fix-it")
        with pytest.raises(ConfigurationError):
            AbftPolicy.from_knob(3)
        with pytest.raises(ConfigurationError):
            AbftPolicy(mode="off")  # "off" means: no checker at all
        with pytest.raises(ConfigurationError):
            AbftPolicy(mode="detect", eps_factor=0.0)

    def test_report_roundtrip(self):
        rep = AbftReport(mode="correct", verified=5, probed=2, detected=1,
                         corrected=1, verify_seconds=0.25,
                         by_phase={"sbr.panel": {"verified": 5, "detected": 1,
                                                 "seconds": 0.25}})
        back = AbftReport.from_dict(json.loads(json.dumps(rep.to_dict())))
        assert back.to_dict() == rep.to_dict()
        assert "abft[correct]" in rep.summary()
        assert "1 SDC detected" in rep.summary()


# ---------------------------------------------------------------------------
# driver integration: the tentpole acceptance criteria
# ---------------------------------------------------------------------------
# (site, call_index) pairs covering distinct compute phases: the SBR
# trailing update, the big-block full update, the driver-level band copy
# into bulge chasing, and the final back-transform.  ``wy_full_right``
# fires once per run at n=64/b=8, so its index is 0.
SITES = (
    ("wy_right", 1),
    ("wy_full_right", 0),
    ("bulge", 0),
    ("back_transform", 1),
)


class TestDriverIntegration:
    def _matrix(self, n=64, seed=3):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        return (a + a.T) / 2

    def test_clean_detect_run_attaches_report(self):
        a = self._matrix()
        res = syevd_2stage(a, b=8, precision="fp32", abft="detect",
                           check_input=False)
        rep = res.abft_report
        assert rep is not None and rep.mode == "detect"
        assert rep.clean and rep.verified > 0
        assert set(rep.by_phase) >= {"sbr.panel", "back_transform"}
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a),
                                   atol=1e-4)

    def test_off_keeps_report_none(self):
        res = syevd_2stage(self._matrix(), b=8, precision="fp32",
                           check_input=False)
        assert res.abft_report is None

    @pytest.mark.parametrize("site,call_index", SITES)
    def test_correct_mode_is_bitwise_identical_under_bitflip(self, site,
                                                             call_index):
        # The headline guarantee: a single-bit flip at any guarded site
        # is corrected in flight and the final EVD is bitwise-identical
        # to the uninjected run.
        a = self._matrix()
        clean = syevd_2stage(a, b=8, precision="fp32", check_input=False)
        inj = FaultInjector(FaultSpec(site=site, kind="bitflip",
                                      call_index=call_index, seed=11))
        res = syevd_2stage(a, b=8, precision="fp32", abft="correct",
                           faults=inj, check_input=False)
        assert inj.fired, f"fault at {site!r} never fired"
        rep = res.abft_report
        assert rep.detected >= 1
        assert rep.corrected + rep.recomputed >= 1
        np.testing.assert_array_equal(res.eigenvalues, clean.eigenvalues)
        np.testing.assert_array_equal(res.eigenvectors, clean.eigenvectors)

    @pytest.mark.parametrize("site,call_index", SITES)
    def test_detect_mode_raises_sdc_error_with_context(self, site, call_index):
        a = self._matrix()
        inj = FaultInjector(FaultSpec(site=site, kind="bitflip",
                                      call_index=call_index, seed=11))
        with pytest.raises(SdcError) as ei:
            syevd_2stage(a, b=8, precision="fp32", abft="detect",
                         faults=inj, on_breakdown="raise", check_input=False)
        exc = ei.value
        assert exc.site == site
        assert exc.call_index is not None
        assert exc.phase is not None
        assert exc.detector == "abft"

    def test_detect_mode_feeds_escalation_ladder(self):
        # Default on_breakdown="escalate": the SdcError is retried like
        # any numerical breakdown and the run still completes.
        a = self._matrix()
        inj = FaultInjector(FaultSpec(site="wy_right", kind="bitflip",
                                      call_index=1, seed=11))
        res = syevd_2stage(a, b=8, precision="fp32", abft="detect",
                           faults=inj, check_input=False)
        assert res.abft_report.raised >= 1
        assert res.resilience_report is not None
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a),
                                   atol=1e-4)

    def test_abft_requires_resilience_layer(self):
        with pytest.raises(ConfigurationError):
            syevd_2stage(self._matrix(), b=8, precision="fp32",
                         abft="detect", on_breakdown=None, check_input=False)

    def test_policy_object_passthrough(self):
        pol = AbftPolicy(mode="detect", freivalds_batch=0)
        res = syevd_2stage(self._matrix(), b=8, precision="fp32", abft=pol,
                           check_input=False)
        assert res.abft_report is not None and res.abft_report.probed == 0

    def test_clean_runs_stay_clean_across_precisions(self):
        # Tolerance calibration: no false positives at reduced precision.
        a = self._matrix(n=48, seed=7)
        for prec in ("fp64", "fp32", "fp16_ec_tc"):
            res = syevd_2stage(a, b=8, precision=prec, abft="detect",
                               check_input=False)
            assert res.abft_report.clean, f"false positive at {prec}"


# ---------------------------------------------------------------------------
# zero-overhead off (tracemalloc-asserted)
# ---------------------------------------------------------------------------
class TestZeroOverheadOff:
    def test_abft_off_hot_path_retains_no_allocations(self, rng):
        # With abft off the wrapper adds one attribute read and a None
        # check per launch.  Detectors are disabled so the measurement
        # isolates the dispatch itself (their allocations are covered by
        # their own tests).
        cfg = DetectorConfig(nonfinite=False, magnitude=False,
                             orthogonality=False, norm_growth=False,
                             symmetry=False, residual=False)
        ctx = ResilienceContext(on_breakdown="escalate", detectors=cfg)
        assert ctx.abft is None
        eng = ctx.wrap_engine(make_engine("fp32"))
        a = rng.standard_normal((32, 32)).astype(np.float32)
        b = rng.standard_normal((32, 32)).astype(np.float32)
        out = np.empty((32, 32), dtype=np.float32)
        for _ in range(50):
            eng.gemm(a, b, tag="t", out=out)
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(200):
            eng.gemm(a, b, tag="t", out=out)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before == 0

    def test_abft_on_actually_verifies_the_same_path(self, rng):
        cfg = DetectorConfig(nonfinite=False, magnitude=False,
                             orthogonality=False, norm_growth=False,
                             symmetry=False, residual=False)
        ctx = ResilienceContext(on_breakdown="escalate", detectors=cfg,
                                abft="detect")
        eng = ctx.wrap_engine(make_engine("fp32"))
        a = rng.standard_normal((16, 16)).astype(np.float32)
        b = rng.standard_normal((16, 16)).astype(np.float32)
        for _ in range(3):
            eng.gemm(a, b, tag="t")
        assert ctx.abft.report.verified == 3


# ---------------------------------------------------------------------------
# satellite 3a: backoff jitter determinism
# ---------------------------------------------------------------------------
class TestBackoffJitterDeterminism:
    def test_identical_sequences_under_fixed_rng(self):
        seq1 = [backoff(k, base=0.05, jitter=0.5,
                        rng=np.random.default_rng(42)) for k in range(6)]
        seq2 = [backoff(k, base=0.05, jitter=0.5,
                        rng=np.random.default_rng(42)) for k in range(6)]
        assert seq1 == seq2

    def test_jittered_draw_stays_in_window(self):
        rng = np.random.default_rng(7)
        for k in range(1, 9):  # attempts are 1-based
            d = backoff(k, base=0.05, cap=5.0, jitter=0.5, rng=rng)
            full = min(0.05 * 2 ** (k - 1), 5.0)
            assert full * 0.5 <= d <= full

    def test_different_seeds_differ(self):
        a = [backoff(3, jitter=0.5, rng=np.random.default_rng(1))
             for _ in range(4)]
        b = [backoff(3, jitter=0.5, rng=np.random.default_rng(2))
             for _ in range(4)]
        assert a != b


# ---------------------------------------------------------------------------
# satellite 3b: serve retry taxonomy — SDC distinct from crash/numerical
# ---------------------------------------------------------------------------
class TestServeSdcTaxonomy:
    def _service(self, tmp_path, **kw):
        from repro.serve import EvdService

        kw.setdefault("workers", 1)
        kw.setdefault("spool_dir", str(tmp_path / "spool"))
        kw.setdefault("scheduler_interval", 0.01)
        kw.setdefault("tick", 0.01)
        return EvdService(**kw)

    def test_persistent_sdc_retries_and_recovers(self, rng, tmp_path):
        from repro.serve import RetryPolicy

        a = random_symmetric(24, rng)
        # count=5 outlives the in-driver ladder's budget, so the worker
        # sees an SdcError; the next attempt drains the remaining
        # firings and succeeds at the SAME precision.
        inj = FaultInjector(FaultSpec(site="wy_right", kind="bitflip",
                                      call_index=1, count=5, seed=3))
        with self._service(tmp_path) as svc:
            jid = svc.submit(
                a, precision="fp32", b=8, abft="detect", faults=inj,
                retry=RetryPolicy(max_attempts=4, backoff_base=0.001),
                tag="sdc-persistent",
            )
            res = svc.result(jid, timeout=120.0)
        assert res is not None and res.ok
        assert res.sdc_retries >= 1
        assert inj.fired
        # Taxonomy: SDC retries are NOT precision escalations.
        np.testing.assert_allclose(res.eigenvalues, np.linalg.eigvalsh(a),
                                   atol=1e-4)
        rec = [json.loads(l) for l in open(svc.manifest_path)][0]
        assert rec["sdc_retries"] == res.sdc_retries

    def test_clean_job_has_zero_sdc_retries(self, rng, tmp_path):
        a = random_symmetric(16, rng)
        with self._service(tmp_path) as svc:
            res = svc.result(svc.submit(a, precision="fp32", b=8,
                                        abft="correct"), timeout=60.0)
        assert res is not None and res.ok and res.sdc_retries == 0

    def test_exhausted_sdc_retries_fail_with_sdc_error_type(self, rng, tmp_path):
        from repro.serve import RetryPolicy

        a = random_symmetric(24, rng)
        inj = FaultInjector(FaultSpec(site="wy_right", kind="bitflip",
                                      call_index=0, count=10_000, seed=3))
        with self._service(tmp_path) as svc:
            jid = svc.submit(
                a, precision="fp32", b=8, abft="detect", faults=inj,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.001),
                tag="sdc-doomed",
            )
            res = svc.result(jid, timeout=120.0)
        assert res is not None and res.outcome == "failed"
        assert res.error_type == "SdcError"
        assert res.sdc_retries >= 1
        # SLO accounting singles SDC jobs out.
        prom = (tmp_path / "spool" / "metrics.prom").read_text()
        assert "repro_serve_slo_sdc_jobs_total" in prom


# ---------------------------------------------------------------------------
# manifest line, report rendering, audit CLI
# ---------------------------------------------------------------------------
class TestManifestReportCli:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        from repro.obs.record import record_syevd

        out = tmp_path_factory.mktemp("abft-runs")
        run = record_syevd(n=32, b=8, precision="fp32", abft="detect",
                           seed=0, run_dir=str(out), probes=False)
        return out, run

    def test_manifest_carries_abft_line(self, recorded):
        from repro.obs.manifest import load_manifest

        out, run = recorded
        man = load_manifest(run.path)
        assert man.abft is not None
        assert man.abft["mode"] == "detect"
        assert man.abft["verified"] > 0 and man.abft["detected"] == 0
        assert man.meta.get("config", {}).get("abft") == "detect"
        back = AbftReport.from_dict(man.abft)
        assert back.verified == man.abft["verified"]

    def test_report_renders_abft_section(self, recorded):
        from repro.obs.manifest import load_manifest
        from repro.obs.report import render_report

        out, run = recorded
        text = render_report(load_manifest(run.path))
        assert "online abft [detect]" in text
        assert "launches verified" in text

    def test_abft_verify_cli(self, recorded, capsys):
        from repro.resilience.__main__ import main

        out, run = recorded
        assert main(["abft-verify", str(out)]) == 0
        text = capsys.readouterr().out
        assert "abft[detect]" in text
        assert main(["abft-verify", "--json", str(run.path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifests"] and payload["manifests"][0]["mode"] == "detect"

    def test_abft_verify_cli_no_abft_runs(self, tmp_path, capsys):
        from repro.obs.record import record_syevd
        from repro.resilience.__main__ import main

        record_syevd(n=32, b=8, precision="fp32", seed=0,
                     run_dir=str(tmp_path), probes=False)
        assert main(["abft-verify", str(tmp_path)]) == 1
        assert main(["abft-verify", str(tmp_path / "missing")]) == 2
