"""Tests for the recursive QR factorization (paper ref [41] lineage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import PerfModel
from repro.errors import ShapeError
from repro.experiments.ablations import run_recursive_qr_study
from repro.gemm import Fp64Engine
from repro.la import recursive_qr, trace_recursive_qr, wy_matrix
from repro.la.recursive_qr import trace_blocked_qr


class TestRecursiveQr:
    @pytest.mark.parametrize(
        "m,n,leaf", [(64, 64, 8), (100, 40, 8), (50, 50, 64), (33, 17, 4), (16, 1, 4), (40, 40, 1)]
    )
    def test_factorization(self, rng, m, n, leaf):
        a = rng.standard_normal((m, n))
        w, y, r = recursive_qr(a, leaf_cols=leaf, engine=Fp64Engine())
        q = wy_matrix(w, y)
        np.testing.assert_allclose(q[:, :n] @ r, a, atol=1e-11)
        np.testing.assert_allclose(q.T @ q, np.eye(m), atol=1e-12)
        np.testing.assert_allclose(np.tril(r, -1), 0, atol=1e-13)

    def test_matches_blocked_qr_r_factor(self, rng):
        from repro.la import blocked_qr

        a = rng.standard_normal((48, 24))
        _, _, r_rec = recursive_qr(a, leaf_cols=4, engine=Fp64Engine())
        _, _, r_blk = blocked_qr(a, block=4, engine=Fp64Engine())
        # Same algorithm family, same sign conventions at the leaves.
        np.testing.assert_allclose(np.abs(r_rec), np.abs(r_blk), atol=1e-11)

    def test_rejects_wide(self, rng):
        with pytest.raises(ShapeError):
            recursive_qr(rng.standard_normal((4, 8)))

    def test_rejects_bad_leaf(self, rng):
        with pytest.raises(ShapeError):
            recursive_qr(rng.standard_normal((8, 4)), leaf_cols=0)

    def test_float32_flow(self, rng):
        a = rng.standard_normal((40, 20)).astype(np.float32)
        w, y, r = recursive_qr(a, leaf_cols=4)
        assert w.dtype == np.float32
        q = wy_matrix(w.astype(np.float64), y.astype(np.float64))
        np.testing.assert_allclose(q[:, :20] @ r, a, atol=1e-4)


class TestRecursiveQrTraces:
    def test_symbolic_matches_recorded(self, rng):
        eng = Fp64Engine(record=True)
        recursive_qr(rng.standard_normal((128, 64)), leaf_cols=8, engine=eng)
        rec = eng.trace.filter(lambda r: r.tag.startswith("rqr"))
        sym = trace_recursive_qr(128, 64, leaf_cols=8)
        assert rec.shape_multiset_by_tag() == sym.shape_multiset_by_tag()

    def test_leaf_only_has_no_gemms(self):
        assert len(trace_recursive_qr(64, 16, leaf_cols=16)) == 0

    def test_recursive_inner_dims_grow(self):
        tr = trace_recursive_qr(1024, 1024, leaf_cols=32)
        # The top-level update has inner dimension n/2 = 512.
        assert max(r.k for r in tr.by_tag("rqr_update")) >= 512

    def test_blocked_inner_dims_fixed(self):
        tb = trace_blocked_qr(1024, 1024, block=32)
        assert all(min(r.shape) <= 32 for r in tb)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            trace_recursive_qr(8, 16)
        with pytest.raises(ShapeError):
            trace_blocked_qr(8, 16)


class TestRecursiveQrStudy:
    def test_ref41_headline(self):
        # Recursion beats blocked QR on the model, more so at larger n —
        # the qualitative result of the paper's ref [41].
        res = run_recursive_qr_study(shapes=((32768, 4096), (32768, 32768)))
        speedups = [r["speedup"] for r in res.rows]
        assert all(s > 1.2 for s in speedups)
        assert speedups[-1] > speedups[0]

    def test_recursion_does_more_flops(self):
        res = run_recursive_qr_study(shapes=((16384, 16384),))
        row = res.rows[0]
        assert row["recursive_tflop"] > row["blocked_tflop"]

    def test_model_times_positive(self):
        pm = PerfModel()
        t = pm.trace_time(trace_recursive_qr(8192, 2048, leaf_cols=128), "tc")
        assert t > 0
