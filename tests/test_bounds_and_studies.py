"""Tests for the error-bound envelopes and the newer ablation studies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.gemm import make_engine
from repro.matrices.generate import TABLE_MATRIX_SPECS, generate_from_spec
from repro.metrics import (
    backward_error,
    orthogonality_error,
    sbr_backward_error_bound,
    sbr_orthogonality_bound,
)
from repro.sbr import sbr_wy


class TestErrorBounds:
    @pytest.mark.parametrize("n,b,nb", [(64, 8, 16), (96, 8, 32), (128, 16, 64)])
    @pytest.mark.parametrize("precision", ["fp16_tc", "fp32"])
    def test_measured_below_bound(self, n, b, nb, precision):
        rng = np.random.default_rng(n + b)
        eb_bound = sbr_backward_error_bound(n, b, precision=precision)
        eo_bound = sbr_orthogonality_bound(n, b, precision=precision)
        for spec in TABLE_MATRIX_SPECS[:3]:
            a, _ = generate_from_spec(spec, n, rng=rng)
            res = sbr_wy(a, b, nb, engine=make_engine(precision), want_q=True)
            assert backward_error(a, res.q, res.band) < eb_bound, spec.label
            assert orthogonality_error(res.q) < eo_bound, spec.label

    def test_bound_scales_with_precision(self):
        assert sbr_backward_error_bound(1024, 32, precision="fp16_tc") > \
            sbr_backward_error_bound(1024, 32, precision="fp32") * 1000

    def test_bound_decreases_with_bandwidth(self):
        # Fewer block transforms -> smaller envelope.
        assert sbr_backward_error_bound(1024, 64) < sbr_backward_error_bound(1024, 8)

    def test_normalized_bound_decreases_with_n(self):
        # The per-N normalization: E_o bound falls as n grows at fixed n/b.
        b_small = sbr_orthogonality_bound(256, 16)
        b_large = sbr_orthogonality_bound(4096, 256)
        assert b_large < b_small

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sbr_backward_error_bound(0, 8)
        with pytest.raises(ConfigurationError):
            sbr_orthogonality_bound(8, 0)


class TestEvdVectorsStudy:
    def test_amdahl_damping(self):
        res = run_experiment("ablation_evd_vectors", sizes=(16384,))
        row = res.rows[0]
        # With-vectors speedup is real but smaller than eigenvalues-only.
        assert 1.0 <= row["speedup"] < row["novec_speedup"]

    def test_back_transform_methods_priced(self):
        res = run_experiment("ablation_evd_vectors", sizes=(32768,))
        row = res.rows[0]
        assert row["back_transform_tree_s"] > 0
        assert row["back_transform_forward_s"] > 0

    def test_model_want_vectors_costs_more(self):
        from repro.device import PerfModel

        pm = PerfModel()
        nv = pm.evd_time(8192, 128, 1024, variant="ours").total
        wv = pm.evd_time(8192, 128, 1024, variant="ours", want_vectors=True).total
        assert wv > 2 * nv


class TestAccumulatorStudy:
    def test_error_at_fp16_level(self):
        res = run_experiment("ablation_accumulator", m=96, k_values=(64, 512))
        for row in res.rows:
            assert 1e-6 < row["rel_error"] < 1e-2

    def test_chunking_does_not_dominate(self):
        # Chunked and unchunked errors agree to within 2x: operand rounding
        # dominates accumulation order (the docs/numerics.md claim).
        res = run_experiment("ablation_accumulator", m=96, k_values=(512,), chunks=(None, 16))
        errs = [row["rel_error"] for row in res.rows]
        assert max(errs) < 2 * min(errs)


class TestScalingStudy:
    def test_normalized_error_falls_with_n(self):
        res = run_experiment("ablation_scaling", sizes=(96, 192, 384))
        eo = res.column("orthogonality")
        assert eo[-1] < eo[0]

    def test_unnormalized_defect_grows_sublinearly(self):
        res = run_experiment("ablation_scaling", sizes=(96, 384))
        raw = res.column("Eo_times_N")
        assert raw[-1] < raw[0] * (384 / 96)  # sub-linear growth
