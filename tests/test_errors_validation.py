"""Tests for the exception hierarchy and input validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    NotSymmetricError,
    ReproError,
    ShapeError,
    SingularMatrixError,
)
from repro.validation import (
    as_matrix,
    as_square_matrix,
    as_symmetric_matrix,
    check_blocksizes,
    check_positive_int,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ShapeError, NotSymmetricError, SingularMatrixError, ConvergenceError, ConfigurationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_shape_error_is_value_error(self):
        assert issubclass(ShapeError, ValueError)

    def test_convergence_error_is_runtime_error(self):
        assert issubclass(ConvergenceError, RuntimeError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise NotSymmetricError("x")


class TestAsMatrix:
    def test_accepts_list_of_lists(self):
        m = as_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert m.shape == (2, 2)

    def test_returns_contiguous(self, rng):
        a = rng.standard_normal((6, 6))[::2]  # non-contiguous view
        out = as_matrix(a)
        assert out.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ShapeError, match="2-D"):
            as_matrix(np.zeros(3))

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            as_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError, match="non-empty"):
            as_matrix(np.zeros((0, 3)))

    def test_dtype_conversion(self):
        m = as_matrix([[1, 2], [3, 4]], dtype=np.float32)
        assert m.dtype == np.float32

    def test_error_uses_argument_name(self):
        with pytest.raises(ShapeError, match="panel"):
            as_matrix(np.zeros(3), name="panel")


class TestAsSquareMatrix:
    def test_accepts_square(self, rng):
        a = rng.standard_normal((4, 4))
        assert as_square_matrix(a).shape == (4, 4)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError, match="square"):
            as_square_matrix(rng.standard_normal((4, 3)))


class TestAsSymmetricMatrix:
    def test_accepts_symmetric(self, rng):
        a = rng.standard_normal((5, 5))
        sym = (a + a.T) / 2
        out = as_symmetric_matrix(sym)
        np.testing.assert_array_equal(out, out.T)

    def test_exact_symmetrization(self, rng):
        a = rng.standard_normal((5, 5))
        sym = (a + a.T) / 2
        # Introduce rounding-level asymmetry.
        noisy = sym + 1e-9 * rng.standard_normal((5, 5))
        out = as_symmetric_matrix(noisy, rtol=1e-5, atol=1e-6)
        np.testing.assert_array_equal(out, out.T)

    def test_rejects_asymmetric(self, rng):
        a = rng.standard_normal((5, 5))
        with pytest.raises(NotSymmetricError):
            as_symmetric_matrix(a)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            as_symmetric_matrix(rng.standard_normal((4, 3)))


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(5, name="x") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(3), name="x") == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ShapeError):
            check_positive_int(bad, name="x")

    @pytest.mark.parametrize("bad", [1.5, "3", True])
    def test_rejects_non_int(self, bad):
        with pytest.raises(ShapeError):
            check_positive_int(bad, name="x")


class TestCheckBlocksizes:
    def test_valid(self):
        check_blocksizes(128, 16, 64)  # no raise

    def test_valid_without_nb(self):
        check_blocksizes(128, 16)

    def test_b_exceeds_n(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            check_blocksizes(8, 16)

    def test_nb_not_multiple_of_b(self):
        with pytest.raises(ConfigurationError, match="multiple"):
            check_blocksizes(128, 16, 40)

    def test_nb_exceeds_n(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            check_blocksizes(32, 16, 64)


class TestValidationErrorStructure:
    """Structured ValidationError: machine-readable field + name."""

    def test_shape_error_is_validation_error(self):
        from repro.errors import ValidationError
        assert issubclass(ShapeError, ValidationError)
        assert issubclass(NotSymmetricError, ValidationError)
        assert issubclass(ValidationError, ValueError)

    def test_field_and_name_carried_and_rendered(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError) as ei:
            as_square_matrix(np.zeros((2, 3)), name="input")
        assert ei.value.field == "square"
        assert ei.value.name == "input"
        assert "[field=square" in str(ei.value)

    def test_nonfinite_field(self, rng):
        from repro.errors import ValidationError
        from repro.validation import check_finite_matrix
        a = rng.standard_normal((4, 4))
        a[1, 2] = np.inf
        with pytest.raises(ValidationError) as ei:
            check_finite_matrix(a)
        assert ei.value.field == "finite"

    def test_symmetry_field(self, rng):
        a = rng.standard_normal((5, 5))
        with pytest.raises(NotSymmetricError) as ei:
            as_symmetric_matrix(a)
        assert ei.value.field == "symmetry"

    def test_check_false_skips_symmetry_test(self, rng):
        a = rng.standard_normal((5, 5))
        out = as_symmetric_matrix(a, check=False)  # symmetrizes silently
        np.testing.assert_array_equal(out, out.T)


class TestCheckTridiagonal:
    def test_valid_pair_passes_as_float64(self):
        from repro.validation import check_tridiagonal
        d, e = check_tridiagonal([1, 2, 3], [4, 5])
        assert d.dtype == np.float64 and e.dtype == np.float64

    def test_rejects_length_mismatch(self):
        from repro.errors import ValidationError
        from repro.validation import check_tridiagonal
        with pytest.raises(ValidationError):
            check_tridiagonal([1.0, 2.0, 3.0], [1.0])

    def test_rejects_nonfinite(self):
        from repro.errors import ValidationError
        from repro.validation import check_tridiagonal
        with pytest.raises(ValidationError) as ei:
            check_tridiagonal([1.0, np.nan], [0.5])
        assert ei.value.field == "finite"

    def test_check_finite_vector(self):
        from repro.errors import ValidationError
        from repro.validation import check_finite_vector
        check_finite_vector(np.ones(3), name="eigenvalues")
        with pytest.raises(ValidationError) as ei:
            check_finite_vector(np.array([1.0, np.inf]), name="eigenvalues")
        assert ei.value.name == "eigenvalues"


class TestCheckInputGate:
    """check_input=False skips entry validation on the drivers."""

    def test_driver_rejects_nan_by_default(self, rng):
        from repro.eig.driver import syevd_2stage
        from repro.errors import ValidationError
        a = rng.standard_normal((8, 8))
        a = (a + a.T) / 2
        a[0, 0] = np.nan
        with pytest.raises(ValidationError):
            syevd_2stage(a, b=2, nb=4)

    def test_driver_skip_gate_symmetrizes_anyway(self, rng):
        from repro.eig.driver import syevd_2stage
        a = rng.standard_normal((8, 8))  # asymmetric on purpose
        res = syevd_2stage(a, b=2, nb=4, precision="fp64",
                           check_input=False)
        sym = (a + a.T) / 2
        np.testing.assert_allclose(
            res.eigenvalues, np.linalg.eigvalsh(sym), atol=1e-10)

    def test_tridiag_ql_gate(self):
        from repro.eig.qliter import tridiag_eig_ql
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            tridiag_eig_ql(np.array([1.0, np.nan]), np.array([0.1]))
