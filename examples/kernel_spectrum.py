"""Kernel-machine spectra with randomized + Tensor-Core eigensolvers.

The paper's author group built TensorSVM and xSVM (refs [43, 35]): kernel
machines whose training is dominated by low-rank approximation of a dense
kernel Gram matrix — one of the motivating workloads for Tensor-Core EVD.
This example builds an RBF kernel matrix over synthetic clustered data
and compares three routes to its dominant spectrum:

1. exact (LAPACK ``eigh``) — the reference;
2. randomized block Lanczos (paper ref [40]) in plain FP32;
3. the full two-stage eigensolver under FP16 Tensor-Core emulation,
   truncated to the same rank (Nyström-style approximation quality).

Run:  python examples/kernel_spectrum.py
"""

from __future__ import annotations

import numpy as np

from repro import syevd_2stage
from repro.svd import block_lanczos_eig

N_POINTS = 240
N_CLUSTERS = 6
RANK = 12
GAMMA = 0.35


def make_kernel(rng: np.random.Generator) -> np.ndarray:
    """RBF kernel Gram matrix over clustered 2-D points."""
    centers = 4.0 * rng.standard_normal((N_CLUSTERS, 2))
    pts = np.concatenate(
        [c + 0.4 * rng.standard_normal((N_POINTS // N_CLUSTERS, 2)) for c in centers]
    )
    sq = np.sum(pts**2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * pts @ pts.T
    return np.exp(-GAMMA * np.maximum(d2, 0.0))


def main() -> None:
    rng = np.random.default_rng(13)
    k_mat = make_kernel(rng)
    n = k_mat.shape[0]

    lam_ref = np.linalg.eigvalsh(k_mat)[::-1]
    print(f"RBF kernel matrix: {n}x{n}, {N_CLUSTERS} clusters")
    print(f"top-{RANK} exact eigenvalues: {np.round(lam_ref[:RANK], 4)}")
    tail_energy = np.sqrt(np.sum(lam_ref[RANK:] ** 2)) / np.sqrt(np.sum(lam_ref**2))
    print(f"relative spectral tail beyond rank {RANK}: {tail_energy:.2e}  "
          "(kernel matrices are numerically low-rank — the TensorSVM premise)")

    # Randomized block Lanczos.
    lam_bl, v_bl = block_lanczos_eig(k_mat, RANK, block_size=RANK, n_blocks=4, rng=rng)
    err_bl = np.abs(np.sort(lam_bl)[::-1] - lam_ref[:RANK]).max() / lam_ref[0]
    print(f"\nblock Lanczos top-{RANK} rel. error: {err_bl:.2e}")

    # Tensor-Core two-stage EVD, truncated.
    res = syevd_2stage(k_mat, b=8, nb=32, precision="fp16_tc")
    lam_tc = res.eigenvalues[::-1][:RANK]
    v_tc = res.eigenvectors[:, ::-1][:, :RANK]
    err_tc = np.abs(lam_tc - lam_ref[:RANK]).max() / lam_ref[0]
    print(f"FP16 Tensor-Core EVD top-{RANK} rel. error: {err_tc:.2e}")

    # Nyström-style approximation quality of the truncated factorizations.
    for label, lam_k, v_k in (("lanczos", np.asarray(lam_bl), v_bl), ("tensor-core", lam_tc, v_tc)):
        approx = (v_k * lam_k) @ v_k.T
        rel = np.linalg.norm(k_mat - approx) / np.linalg.norm(k_mat)
        print(f"rank-{RANK} kernel approximation error ({label}): {rel:.2e}")

    print(
        "\nBoth reduced-precision routes approximate the kernel to the "
        "spectral-tail floor: Tensor-Core accuracy is not the bottleneck "
        "for kernel-machine workloads."
    )


if __name__ == "__main__":
    main()
