"""Quickstart: two-stage symmetric eigendecomposition on emulated Tensor Cores.

Generates a random symmetric matrix with a known spectrum, runs the
paper's pipeline (WY-based band reduction -> bulge chasing -> divide &
conquer) under four precision policies, and compares accuracy against the
exact spectrum — reproducing the precision ladder of the paper's Tables
3/4 in one script.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import Precision, eigenvalue_error, generate_symmetric, syevd_2stage


def main(n: int = 256) -> None:
    rng = np.random.default_rng(2023)
    a, lam_true = generate_symmetric(n, distribution="geo", cond=1e3, rng=rng)
    print(f"Symmetric test matrix: n={n}, geometric spectrum, cond=1e3")
    print(f"{'precision':<14} {'E_s (vs true)':<14} {'resid |Ax-λx|':<14} time")

    for precision in (Precision.FP64, Precision.FP32, Precision.FP16_EC_TC, Precision.FP16_TC):
        t0 = time.perf_counter()
        res = syevd_2stage(a, b=16, nb=64, precision=precision, want_vectors=True)
        dt = time.perf_counter() - t0
        err = eigenvalue_error(lam_true, res.eigenvalues)
        x = res.eigenvectors
        resid = float(np.abs(a @ x - x * res.eigenvalues).max())
        print(f"{precision.value:<14} {err:<14.3e} {resid:<14.3e} {dt:.2f}s")

    print(
        "\nExpected shape: fp64 exact; fp32 and fp16_ec_tc at single precision;"
        "\nfp16_tc at the Tensor-Core machine epsilon (~1e-4) — the error the"
        "\npaper's error-corrected GEMMs (EC-TCGEMM) remove."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 256)
