"""PCA / low-rank approximation with the Tensor-Core eigensolver.

The paper's introduction motivates reduced-precision EVD with data-driven
applications — principal component analysis and low-rank approximation
tolerate Tensor-Core accuracy.  This example builds a synthetic dataset
with a planted low-rank structure, computes its covariance spectrum with
the FP16-Tensor-Core pipeline, and shows that (1) the dominant principal
subspace matches a float64 reference almost exactly, and (2) the low-rank
reconstruction error is indistinguishable from the exact one — while the
trailing noise eigenvalues differ only at the ~1e-4 level.

Run:  python examples/pca_lowrank.py
"""

from __future__ import annotations

import numpy as np

from repro import syevd_2stage

N_SAMPLES = 2000
N_FEATURES = 192
RANK = 10


def make_dataset(rng: np.random.Generator) -> np.ndarray:
    """Samples with a planted rank-RANK signal plus isotropic noise."""
    basis = np.linalg.qr(rng.standard_normal((N_FEATURES, RANK)))[0]
    weights = rng.standard_normal((N_SAMPLES, RANK)) * np.linspace(10, 2, RANK)
    noise = 0.1 * rng.standard_normal((N_SAMPLES, N_FEATURES))
    return weights @ basis.T + noise


def subspace_angle(u: np.ndarray, v: np.ndarray) -> float:
    """Largest principal angle (radians) between equal-rank subspaces."""
    s = np.linalg.svd(u.T @ v, compute_uv=False)
    return float(np.arccos(np.clip(s.min(), -1.0, 1.0)))


def main() -> None:
    rng = np.random.default_rng(7)
    x = make_dataset(rng)
    x -= x.mean(axis=0)
    cov = (x.T @ x) / (N_SAMPLES - 1)

    res = syevd_2stage(cov, b=16, nb=64, precision="fp16_tc")
    lam_tc, v_tc = res.eigenvalues[::-1], res.eigenvectors[:, ::-1]
    lam_ref, v_ref = np.linalg.eigh(cov)
    lam_ref, v_ref = lam_ref[::-1], v_ref[:, ::-1]

    print(f"covariance: {N_FEATURES}x{N_FEATURES}, planted rank {RANK}")
    print("\ntop eigenvalues (TC vs exact):")
    for i in range(RANK):
        print(f"  λ{i:<2d}  {lam_tc[i]:12.6f}   {lam_ref[i]:12.6f}"
              f"   rel.diff {abs(lam_tc[i] - lam_ref[i]) / lam_ref[i]:.2e}")

    angle = subspace_angle(v_tc[:, :RANK], v_ref[:, :RANK])
    print(f"\nprincipal-subspace angle (rank {RANK}): {np.degrees(angle):.4f} degrees")

    # Low-rank reconstruction quality: project data on the top-RANK basis.
    for label, v in (("tensor-core", v_tc), ("float64", v_ref)):
        proj = x @ v[:, :RANK] @ v[:, :RANK].T
        rel = np.linalg.norm(x - proj) / np.linalg.norm(x)
        print(f"rank-{RANK} reconstruction error ({label}): {rel:.6f}")

    print(
        "\nThe two reconstructions agree to ~5 digits: Tensor-Core EVD is "
        "sufficient for PCA-class workloads, the paper's motivating use case."
    )


if __name__ == "__main__":
    main()
