"""Spectral graph partitioning with the library's eigensolvers.

Builds a planted two-community graph, forms its Laplacian, and recovers
the communities from the Fiedler vector.  Two of the library's solvers are
exercised on the way:

- Sturm bisection (:func:`repro.eig.eigvals_bisect`) localizes just the
  two smallest Laplacian eigenvalues after the band/tridiagonal reduction
  — the "subset of eigenvalues" query style the paper's related work
  attributes to bisection methods;
- the full two-stage EVD (FP16 Tensor-Core emulation) supplies the
  Fiedler eigenvector used for the actual partition.

Run:  python examples/spectral_partition.py
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro import bulge_chase, sbr_wy, syevd_2stage, make_engine
from repro.eig import eigvals_bisect

N_PER_SIDE = 64
P_IN, P_OUT = 0.25, 0.02


def main() -> None:
    rng = np.random.default_rng(11)
    g = nx.planted_partition_graph(2, N_PER_SIDE, P_IN, P_OUT, seed=3)
    lap = nx.laplacian_matrix(g).toarray().astype(np.float64)
    n = lap.shape[0]
    truth = np.array([0] * N_PER_SIDE + [1] * N_PER_SIDE)

    # --- Selected eigenvalues via band reduction + bulge chase + bisection.
    engine = make_engine("fp32")
    band = sbr_wy(lap, 8, 32, engine=engine, want_q=False).band
    d, e, _ = bulge_chase(np.asarray(band, dtype=np.float64), 8, want_q=False)
    low = eigvals_bisect(d, e, select=(0, 3))
    print(f"three smallest Laplacian eigenvalues (bisection): {np.round(low, 6)}")
    print("  (λ0 ≈ 0 for a connected graph; λ1 is the algebraic connectivity)")

    # --- Fiedler vector from the full TC pipeline.
    res = syevd_2stage(lap, b=8, nb=32, precision="fp16_tc")
    fiedler = res.eigenvectors[:, 1]
    labels = (fiedler > np.median(fiedler)).astype(int)
    agreement = max(np.mean(labels == truth), np.mean(labels != truth))
    print(f"\nFiedler-vector partition accuracy vs planted communities: {agreement:.1%}")

    lam_ref = np.linalg.eigvalsh(lap)
    err = np.abs(np.sort(res.eigenvalues) - lam_ref).max() / lam_ref.max()
    print(f"TC spectrum max relative deviation from LAPACK: {err:.2e}")
    assert agreement > 0.9, "partition should recover the planted structure"


if __name__ == "__main__":
    main()
