"""What-if studies on the calibrated A100 performance model.

Goes beyond the paper's figures: uses the same symbolic-trace + device
model machinery to answer questions the paper leaves open —

1. How does the optimal big-block size nb move with matrix size?
2. Where exactly is the WY/ZY crossover, scanned finely in n?
3. What if the device changes?  (a) a hypothetical GPU with a native
   Tensor-Core ``syr2k`` (halving the ZY rank-2b-update flops), and (b) a
   bandwidth-doubled part.

Run:  python examples/performance_exploration.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import A100Spec, PerfModel
from repro.gemm.symbolic import trace_sbr_wy, trace_sbr_zy


def optimal_nb_vs_size(pm: PerfModel) -> None:
    print("1) optimal nb per matrix size (b=128):")
    for n in (4096, 8192, 16384, 32768):
        candidates = [nb for nb in (128, 256, 512, 1024, 2048, 4096) if nb <= n // 4]
        times = {
            nb: pm.trace_time(trace_sbr_wy(n, 128, nb, want_q=False), "tc")
            for nb in candidates
        }
        best = min(times, key=times.get)
        print(f"   n={n:<6d} best nb = {best:<5d} ({times[best]*1e3:8.1f} ms)")
    print("   -> the sweet spot grows with n; 1024 is right at paper scale\n")


def crossover_scan(pm: PerfModel) -> None:
    print("2) WY/ZY crossover scan (TC, nb=1024):")
    prev = None
    for n in range(4096, 32769, 2048):
        wy = pm.trace_time(trace_sbr_wy(n, 128, 1024, want_q=False), "tc")
        zy = pm.trace_time(trace_sbr_zy(n, 128, want_q=False), "tc")
        ratio = zy / wy
        marker = ""
        if prev is not None and (prev < 1.0 <= ratio):
            marker = "   <-- crossover"
        print(f"   n={n:<6d} zy/wy = {ratio:.3f}{marker}")
        prev = ratio
    print()


def what_if_devices() -> None:
    print("3) what-if devices (n=32768, b=128, nb=1024):")
    pm = PerfModel()
    n = 32768
    wy = pm.sbr_time(n, 128, 1024, method="wy", engine="tc", panel="tsqr").total
    zy = pm.sbr_time(n, 128, 1024, method="zy", engine="tc", panel="tsqr").total

    # (a) native TC syr2k: halve the flops of the two ZY outer products.
    zy_trace = trace_sbr_zy(n, 128, want_q=False)
    rank2k = zy_trace.filter(lambda r: r.tag in ("zy_zyt", "zy_yzt"))
    others = zy_trace.filter(lambda r: r.tag not in ("zy_zyt", "zy_yzt"))
    zy_syr2k = pm.trace_time(others, "tc") + 0.5 * pm.trace_time(rank2k, "tc")
    zy_syr2k += pm.sbr_panel_total(n, 128, "tsqr")
    print(f"   baseline:          WY {wy:6.2f}s  vs ZY {zy + pm.sbr_panel_total(n,128,'tsqr'):6.2f}s")
    print(f"   native TC syr2k:   ZY drops to ~{zy_syr2k:5.2f}s "
          f"(the paper's future-work item would {'erase' if zy_syr2k < wy else 'not erase'} the WY advantage)")

    # (b) doubled HBM bandwidth: helps the memory-bound skinny GEMMs.
    fat_spec = dataclasses.replace(A100Spec, hbm_bandwidth=2 * A100Spec.hbm_bandwidth)
    pm2 = PerfModel(fat_spec)
    wy2 = pm2.sbr_time(n, 128, 1024, method="wy", engine="tc", panel="tsqr").total
    print(f"   2x HBM bandwidth:  WY {wy2:6.2f}s ({wy / wy2:.2f}x vs baseline)")


def main() -> None:
    np.set_printoptions(precision=3)
    pm = PerfModel()
    optimal_nb_vs_size(pm)
    crossover_scan(pm)
    what_if_devices()


if __name__ == "__main__":
    main()
