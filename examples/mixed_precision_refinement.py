"""Approximate-iterate eigensolving: Tensor-Core pipeline + Newton refinement.

The paper's introduction explains why mixed-precision *factorizations*
are usually structured approximate-then-iterate, and its conclusion defers
the eigenvalue version to future work.  This example runs that future
work: the FP16 Tensor-Core pipeline produces ~1e-4-grade eigenpairs, and
each Ogita–Aishima refinement sweep (float64 GEMMs) squares the error —
two sweeps reach full double precision, for matrices whose spectra range
from well-separated to pathologically clustered.

Run:  python examples/mixed_precision_refinement.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_symmetric, refine_eigenpairs, syevd_2stage
from repro.metrics import eigenvalue_error, orthogonality_error

N = 192
CASES = [
    ("geo, cond 1e3", dict(distribution="geo", cond=1e3)),
    ("arith, cond 1e5", dict(distribution="arith", cond=1e5)),
    ("cluster1, cond 1e5", dict(distribution="cluster1", cond=1e5)),
]


def main() -> None:
    rng = np.random.default_rng(31)
    print(f"n = {N}; start: FP16 Tensor-Core two-stage EVD; refine: float64 Newton sweeps\n")
    for label, kwargs in CASES:
        a, lam_true = generate_symmetric(N, rng=rng, **kwargs)
        base = syevd_2stage(a, b=16, nb=64, precision="fp16_tc")
        print(f"--- {label} ---")
        print(f"  sweeps=0  E_s {eigenvalue_error(lam_true, base.eigenvalues):.2e}  "
              f"orth {orthogonality_error(base.eigenvectors):.2e}")
        for sweeps in (1, 2):
            lam, x = refine_eigenpairs(a, base.eigenvectors, iterations=sweeps)
            resid = float(np.abs(a @ x - x * lam).max())
            print(f"  sweeps={sweeps}  E_s {eigenvalue_error(lam_true, lam):.2e}  "
                  f"orth {orthogonality_error(x):.2e}  resid {resid:.2e}")
        print()
    print(
        "Each sweep squares the error (quadratic convergence): the cheap\n"
        "Tensor-Core factorization does the O(n^3) heavy lifting, and two\n"
        "refinement sweeps buy back full float64 accuracy."
    )


if __name__ == "__main__":
    main()
