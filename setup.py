"""Setuptools shim enabling legacy editable installs (`pip install -e .`)
in offline environments without the `wheel` package."""

from setuptools import setup

setup()
